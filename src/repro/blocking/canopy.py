"""Canopy clustering (McCallum, Nigam & Ungar, KDD 2000).

The paper builds its covers "by first constructing a total cover over the
Similar relation using the Canopies algorithm, and then taking the boundary of
each neighborhood with respect to other relations" (Section 4).  Canopies use
a *cheap* similarity with two thresholds:

* ``loose`` — entities within this similarity of the canopy center join the
  canopy (canopies may overlap),
* ``tight`` — entities within this similarity of the center are removed from
  the pool of potential future centers.

The result is a set of overlapping neighborhoods such that every pair of
sufficiently-similar entities shares at least one canopy — i.e. a total cover
over the ``Similar`` relation.

Two implementations coexist:

* the **profiled** path (default): entities are tokenized and normalized once
  into an :class:`~repro.similarity.profiles.EntityProfileIndex`, pair scores
  go through memoized scorers with sound upper-bound pruning, and the
  ``"tfidf"`` similarity gets its candidates *with scores* straight from the
  postings index;
* the **naive** path (``use_profiles=False``): the original string-at-a-time
  reference implementation, kept verbatim as the parity baseline.

Both produce bitwise-identical covers (``tests/test_profiles.py``).
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..datamodel import Entity, EntityStore
from ..obs import registry as obs_registry
from ..obs.trace import span
from ..similarity.name_similarity import DEFAULT_AUTHOR_SIMILARITY
from ..similarity.profiles import EntityProfileIndex, ProfiledNameScorer
from ..similarity.tfidf import TfIdfVectorizer, cosine_similarity, default_tokenizer
from .base import Blocker
from .cover import Cover

#: Cheap similarity signature: maps two entities to a score in [0, 1].
CheapSimilarity = Callable[[Entity, Entity], float]

#: ``canopy_fn(center_id) -> (canopy ids, removed ids)`` — one center's canopy.
CanopyFn = Callable[[str], Tuple[Set[str], Set[str]]]

_COVERS = obs_registry.counter(
    "blocking_covers_total", "Canopy covers built")
_COVER_SECONDS = obs_registry.histogram(
    "blocking_cover_seconds", "Wall-clock of one canopy cover build")


def author_name_cheap_similarity(a: Entity, b: Entity) -> float:
    """Default cheap similarity for author references: structured name score."""
    return DEFAULT_AUTHOR_SIMILARITY.score_entities(a, b)


class CanopyBlocker(Blocker):
    """Canopy clustering over a cheap similarity measure.

    Parameters
    ----------
    loose_threshold:
        Entities at least this similar to a canopy center join the canopy.
    tight_threshold:
        Entities at least this similar to the center stop being candidate
        centers themselves.  Must be ≥ ``loose_threshold``.
    similarity:
        Cheap entity-pair similarity; defaults to the structured author-name
        score.  The string ``"tfidf"`` selects TF-IDF cosine over the text
        attributes (vectorizer fitted on the clustered entities).
    entity_type:
        When set, only entities of this type are clustered into canopies
        (papers, for instance, are attached later via boundary expansion).
    text_attributes:
        Attribute(s) used by the inverted-index pre-filter.  Candidate
        neighbours for a center are restricted to entities sharing at least
        one token/character trigram with the center, which keeps canopy
        construction far below quadratic on realistic name data.
    seed:
        Seed for the random choice of canopy centers (canopies are randomised
        but the downstream framework is order-invariant).
    use_profiles:
        Route construction through the precomputed
        :class:`~repro.similarity.profiles.EntityProfileIndex` (default).
        ``False`` selects the naive string-at-a-time reference path; covers
        are identical either way.
    """

    def __init__(self, loose_threshold: float = 0.78, tight_threshold: float = 0.92,
                 similarity: Union[CheapSimilarity, str] = author_name_cheap_similarity,
                 entity_type: Optional[str] = "author",
                 text_attributes: Sequence[str] = ("fname", "lname"),
                 seed: int = 0, use_profiles: bool = True):
        if not 0.0 <= loose_threshold <= tight_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= loose <= tight <= 1")
        if isinstance(similarity, str) and similarity != "tfidf":
            raise ValueError(f"unknown similarity spec {similarity!r}; "
                             "only 'tfidf' is accepted as a string")
        self.loose_threshold = loose_threshold
        self.tight_threshold = tight_threshold
        self.similarity = similarity
        self.entity_type = entity_type
        self.text_attributes = tuple(text_attributes)
        self.seed = seed
        self.use_profiles = use_profiles
        # The profiled scorer of the most recent canopy build (None until a
        # profiled build ran): holds the LRU memos whose hit/miss stats
        # :meth:`memo_stats` surfaces for the metrics registry.
        self._last_scorer: Optional[ProfiledNameScorer] = None

    def memo_stats(self) -> Dict[str, Dict[str, int]]:
        """Scorer memo efficacy of the most recent build (empty if none)."""
        if self._last_scorer is None:
            return {}
        return self._last_scorer.memo_stats()

    # ------------------------------------------------------------------ text
    def _entity_text(self, entity: Entity) -> str:
        parts = [str(entity.get(attr, "")) for attr in self.text_attributes]
        return " ".join(part for part in parts if part)

    def _build_inverted_index(self, entities: Sequence[Entity]) -> Dict[str, Set[str]]:
        """Token → entity-id inverted index used to pre-filter candidates."""
        index: Dict[str, Set[str]] = {}
        for entity in entities:
            for token in default_tokenizer(self._entity_text(entity)):
                index.setdefault(token, set()).add(entity.entity_id)
        return index

    def _candidates(self, entity: Entity, index: Dict[str, Set[str]]) -> Set[str]:
        candidates: Set[str] = set()
        for token in default_tokenizer(self._entity_text(entity)):
            candidates.update(index.get(token, ()))
        candidates.discard(entity.entity_id)
        return candidates

    # ------------------------------------------------------------- selection
    def clustered_entities(self, store: EntityStore) -> List[Entity]:
        """The entities this blocker clusters, in sorted entity-id order."""
        if self.entity_type is not None:
            entities = store.entities_of_type(self.entity_type)
        else:
            entities = store.entities()
        return sorted(entities, key=lambda e: e.entity_id)

    def shuffled_order(self, entities: Sequence[Entity]) -> List[str]:
        """Seeded random center-processing order over ``entities``.

        The order is *insertion-stable*: each entity's position comes from a
        per-entity keyed hash of ``(seed, entity_id)``, so adding or removing
        one entity inserts/deletes one element without perturbing the
        relative order of all the others.  (A global ``random.shuffle`` over
        the id list would re-permute everything whenever the entity set
        changes by a single element, which would force the streaming cover
        maintainer to treat every canopy as dirty on every delta batch.)
        """
        seed = str(self.seed).encode("utf-8")

        def rank(entity_id: str) -> Tuple[bytes, str]:
            digest = hashlib.blake2b(entity_id.encode("utf-8"), key=seed[:64],
                                     digest_size=8).digest()
            return digest, entity_id

        return sorted((entity.entity_id for entity in entities), key=rank)

    def profile_index(self, entities: Sequence[Entity],
                      profiles: Optional[EntityProfileIndex] = None) -> EntityProfileIndex:
        """A profile index covering exactly ``entities``; reuses ``profiles`` when compatible."""
        if profiles is not None and profiles.matches(
                (entity.entity_id for entity in entities), self.text_attributes):
            return profiles
        return EntityProfileIndex(entities, text_attributes=self.text_attributes)

    # --------------------------------------------------------- canopy builders
    def canopy_factory(self, entities: Sequence[Entity],
                       profiles: Optional[EntityProfileIndex] = None) -> CanopyFn:
        """Build the per-center canopy function for the configured mode."""
        loose, tight = self.loose_threshold, self.tight_threshold

        if not self.use_profiles:
            by_id = {entity.entity_id: entity for entity in entities}
            index = self._build_inverted_index(entities)
            if self.similarity == "tfidf":
                texts = {entity.entity_id: self._entity_text(entity) for entity in entities}
                vectorizer = TfIdfVectorizer().fit(
                    texts[entity.entity_id] for entity in entities)

                def naive_tfidf_score(a: str, b: str) -> float:
                    return cosine_similarity(vectorizer.transform(texts[a]),
                                             vectorizer.transform(texts[b]))

                score = naive_tfidf_score
            else:
                similarity = self.similarity

                def naive_entity_score(a: str, b: str) -> float:
                    return similarity(by_id[a], by_id[b])

                score = naive_entity_score

            def naive_canopy(center_id: str) -> Tuple[Set[str], Set[str]]:
                canopy: Set[str] = {center_id}
                removed: Set[str] = {center_id}
                for candidate_id in self._candidates(by_id[center_id], index):
                    if candidate_id not in by_id:
                        continue
                    candidate_score = score(center_id, candidate_id)
                    if candidate_score >= loose:
                        canopy.add(candidate_id)
                        if candidate_score >= tight:
                            removed.add(candidate_id)
                return canopy, removed

            return naive_canopy

        pindex = self.profile_index(entities, profiles)
        if self.similarity == "tfidf":
            tfidf = pindex.tfidf

            def tfidf_canopy(center_id: str) -> Tuple[Set[str], Set[str]]:
                canopy: Set[str] = {center_id}
                removed: Set[str] = {center_id}
                # Candidates arrive with their exact cosine already ≥ loose.
                for candidate_id, candidate_score in tfidf.candidates_with_scores(
                        center_id, loose):
                    canopy.add(candidate_id)
                    if candidate_score >= tight:
                        removed.add(candidate_id)
                return canopy, removed

            return tfidf_canopy

        if self.similarity is author_name_cheap_similarity:
            scorer = ProfiledNameScorer(pindex.name_parts())
            self._last_scorer = scorer
            # Kernel-backed batch sweep when numpy is available; the batch
            # scorer replays the scalar arithmetic bit-exactly over interned
            # row caches, so the canopies are identical either way.
            batch = scorer.batch_scorer(pindex.postings)

            def profiled_canopy(center_id: str) -> Tuple[Set[str], Set[str]]:
                canopy: Set[str] = {center_id}
                removed: Set[str] = {center_id}
                if batch is not None:
                    scored = batch.canopy_scores_from_tokens(
                        center_id, pindex.profile(center_id).token_set, loose)
                else:
                    scored = scorer.canopy_scores(
                        center_id, pindex.candidates(center_id), loose)
                for candidate_id, candidate_score in scored:
                    canopy.add(candidate_id)
                    if candidate_score >= tight:
                        removed.add(candidate_id)
                return canopy, removed

            return profiled_canopy

        similarity = self.similarity

        def custom_canopy(center_id: str) -> Tuple[Set[str], Set[str]]:
            canopy: Set[str] = {center_id}
            removed: Set[str] = {center_id}
            center = pindex.entity(center_id)
            for candidate_id in pindex.candidates(center_id):
                candidate_score = similarity(center, pindex.entity(candidate_id))
                if candidate_score >= loose:
                    canopy.add(candidate_id)
                    if candidate_score >= tight:
                        removed.add(candidate_id)
            return canopy, removed

        return custom_canopy

    # ----------------------------------------------------------- interned path
    def _interner_for(self, store: EntityStore):
        """The store's id interner when the interned fast path applies.

        The interned path covers the default profiled author-name mode over a
        :class:`~repro.datamodel.CompactStore`: candidate generation and the
        center sweep then run entirely in the snapshot's integer id space
        (``similarity/profiles.InternedProfileSpace``) and only the final
        canopies are decoded back to entity ids.  Scores go through the same
        :class:`ProfiledNameScorer` arithmetic, so covers are identical to
        the string-keyed path (asserted in ``tests/test_compact_store.py``).
        """
        if not self.use_profiles or self.similarity is not author_name_cheap_similarity:
            return None
        return getattr(store, "interner", None)

    def _interned_canopies(self, entities: Sequence[Entity], interner,
                           profiles: Optional[EntityProfileIndex] = None
                           ) -> List[Set[str]]:
        """Canopy sweep in integer id space; canopies decoded at the end."""
        index = self.profile_index(entities, profiles)
        space = index.interned_space(interner)
        scorer = ProfiledNameScorer(space.parts)
        self._last_scorer = scorer
        batch = scorer.batch_scorer(space.postings)
        loose, tight = self.loose_threshold, self.tight_threshold

        def interned_canopy(center: int) -> Tuple[Set[int], Set[int]]:
            canopy: Set[int] = {center}
            removed: Set[int] = {center}
            if batch is not None:
                scored = batch.canopy_scores_from_tokens(
                    center, space.tokens[center], loose)
            else:
                scored = scorer.canopy_scores(
                    center, space.candidates(center), loose)
            for candidate, score in scored:
                canopy.add(candidate)
                if score >= tight:
                    removed.add(candidate)
            return canopy, removed

        order = [interner.index_of(entity_id)
                 for entity_id in self.shuffled_order(entities)]
        return [space.decode(canopy)
                for canopy in self.sweep(order, interned_canopy)]

    @staticmethod
    def sweep(order: Sequence[str], canopy_fn: CanopyFn) -> List[Set[str]]:
        """Sequential center sweep: the canonical canopy acceptance loop.

        Walks ``order``, accepting each id still in the remaining pool as a
        center and removing that canopy's tight-threshold members from the
        pool.  The parallel cover builder reproduces exactly this acceptance
        sequence with speculative waves.
        """
        remaining: Set[str] = set(order)
        canopies: List[Set[str]] = []
        for center_id in order:
            if center_id not in remaining:
                continue
            canopy, removed = canopy_fn(center_id)
            remaining -= removed
            canopies.append(canopy)
        return canopies

    # ----------------------------------------------------------------- cover
    def build_cover(self, store: EntityStore,
                    profiles: Optional[EntityProfileIndex] = None) -> Cover:
        """Run the canopy algorithm and return the resulting cover.

        Entities of other types (when ``entity_type`` is set) are *not*
        included here; boundary expansion pulls them in afterwards.  Entities
        that end up in no canopy (no similar neighbour at all) each get a
        singleton neighborhood so the result is still a cover of the clustered
        entity type.  ``profiles`` may supply a prebuilt
        :class:`~repro.similarity.profiles.EntityProfileIndex` covering
        exactly the clustered entities.
        """
        started = time.perf_counter()
        with span("blocking.cover") as cover_span:
            entities = self.clustered_entities(store)
            cover_span.add_attrs(entities=len(entities))
            interner = self._interner_for(store)
            if interner is not None:
                canopies = self._interned_canopies(entities, interner, profiles)
            else:
                canopy_fn = self.canopy_factory(entities, profiles)
                canopies = self.sweep(self.shuffled_order(entities), canopy_fn)

            # Safety net: any entity never assigned to a canopy becomes a
            # singleton.
            assigned: Set[str] = set()
            for canopy in canopies:
                assigned |= canopy
            for entity in entities:
                if entity.entity_id not in assigned:
                    canopies.append({entity.entity_id})

            cover = self._make_neighborhoods(canopies, prefix="canopy-")
            cover_span.add_attrs(neighborhoods=len(cover.names()))
        _COVERS.inc()
        _COVER_SECONDS.observe(time.perf_counter() - started)
        return cover
