"""Neighborhoods, covers and total covers (Section 4 of the paper).

A *neighborhood* is a subset of the entities; a *cover* is a set of
(potentially overlapping) neighborhoods whose union is the entity set; a
cover is *total* w.r.t. a relation set ``R`` when every relation tuple is
fully contained in at least one neighborhood (Definition 7).  Tuples not
contained in any neighborhood would be "lost": they would never participate
in any matching decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datamodel import EntityPair, EntityStore, Relation
from ..exceptions import CoverError


@dataclass(frozen=True)
class Neighborhood:
    """A named subset of the entity ids."""

    name: str
    entity_ids: FrozenSet[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "entity_ids", frozenset(self.entity_ids))
        if not self.entity_ids:
            raise CoverError(f"neighborhood {self.name!r} is empty")

    def __len__(self) -> int:
        return len(self.entity_ids)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self.entity_ids

    def __iter__(self) -> Iterator[str]:
        return iter(self.entity_ids)

    def contains_pair(self, pair: EntityPair) -> bool:
        """Whether both members of ``pair`` lie inside this neighborhood."""
        return pair.first in self.entity_ids and pair.second in self.entity_ids

    def expanded(self, extra_entity_ids: Iterable[str], suffix: str = "") -> "Neighborhood":
        """A copy with extra entities added (used by boundary expansion)."""
        name = self.name + suffix if suffix else self.name
        return Neighborhood(name, self.entity_ids | set(extra_entity_ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Neighborhood({self.name!r}, size={len(self.entity_ids)})"


class Cover:
    """An ordered collection of neighborhoods covering (part of) the entities."""

    def __init__(self, neighborhoods: Iterable[Neighborhood] = ()):
        self._neighborhoods: List[Neighborhood] = list(neighborhoods)
        names = [n.name for n in self._neighborhoods]
        if len(names) != len(set(names)):
            raise CoverError("neighborhood names within a cover must be unique")
        self._membership: Dict[str, Set[str]] = {}
        for neighborhood in self._neighborhoods:
            for entity_id in neighborhood:
                self._membership.setdefault(entity_id, set()).add(neighborhood.name)
        self._by_name: Dict[str, Neighborhood] = {n.name: n for n in self._neighborhoods}

    # ---------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self._neighborhoods)

    def __iter__(self) -> Iterator[Neighborhood]:
        return iter(self._neighborhoods)

    def __getitem__(self, index: int) -> Neighborhood:
        return self._neighborhoods[index]

    def neighborhood(self, name: str) -> Neighborhood:
        try:
            return self._by_name[name]
        except KeyError:
            raise CoverError(f"no neighborhood named {name!r} in this cover") from None

    def names(self) -> List[str]:
        return [n.name for n in self._neighborhoods]

    def covered_entities(self) -> FrozenSet[str]:
        """Union of all neighborhoods."""
        return frozenset(self._membership)

    def neighborhoods_of(self, entity_id: str) -> FrozenSet[str]:
        """Names of the neighborhoods containing ``entity_id``."""
        return frozenset(self._membership.get(entity_id, frozenset()))

    def neighborhoods_of_pair(self, pair: EntityPair) -> FrozenSet[str]:
        """Names of the neighborhoods containing *both* members of ``pair``."""
        return frozenset(self._membership.get(pair.first, frozenset())
                         & self._membership.get(pair.second, frozenset()))

    def neighbors_of_pairs(self, pairs: Iterable[EntityPair]) -> FrozenSet[str]:
        """Neighborhoods affected by any of ``pairs``.

        This is the ``Neighbor(...)`` operator in Algorithms 1 and 3: the set
        of neighborhoods that contain at least one entity from the given
        pairs, and therefore might produce new matches once these pairs are
        added to the evidence.
        """
        affected: Set[str] = set()
        for pair in pairs:
            affected.update(self._membership.get(pair.first, ()))
            affected.update(self._membership.get(pair.second, ()))
        return frozenset(affected)

    # ------------------------------------------------------------ validation
    def covers(self, entity_ids: Iterable[str]) -> bool:
        """Whether the union of neighborhoods includes all of ``entity_ids``."""
        return set(entity_ids) <= set(self._membership)

    def validate_covering(self, store: EntityStore) -> None:
        """Raise :class:`CoverError` unless every entity of ``store`` is covered."""
        missing = store.entity_ids() - self.covered_entities()
        if missing:
            sample = sorted(missing)[:5]
            raise CoverError(
                f"cover misses {len(missing)} entities (e.g. {sample}); not a valid cover"
            )

    def uncovered_tuples(self, store: EntityStore,
                         relation_names: Optional[Iterable[str]] = None
                         ) -> Dict[str, List[Tuple[str, ...]]]:
        """Relation tuples not fully contained in any neighborhood, per relation.

        A cover is total (Definition 7) iff this is empty for every relation
        in ``R``.
        """
        names = list(relation_names) if relation_names is not None else store.relation_names()
        missing: Dict[str, List[Tuple[str, ...]]] = {}
        for name in names:
            relation = store.relation(name)
            for tup in relation:
                if not self._tuple_covered(tup):
                    missing.setdefault(name, []).append(tup)
        return missing

    def _tuple_covered(self, tup: Sequence[str]) -> bool:
        common: Optional[Set[str]] = None
        for entity_id in tup:
            neighborhoods = self._membership.get(entity_id)
            if not neighborhoods:
                return False
            common = set(neighborhoods) if common is None else common & neighborhoods
            if not common:
                return False
        return bool(common)

    def is_total(self, store: EntityStore,
                 relation_names: Optional[Iterable[str]] = None) -> bool:
        """Whether this cover is a total cover of ``store`` w.r.t. the relations."""
        if not self.covers(store.entity_ids()):
            return False
        return not self.uncovered_tuples(store, relation_names)

    # ----------------------------------------------------------------- stats
    def max_neighborhood_size(self) -> int:
        return max((len(n) for n in self._neighborhoods), default=0)

    def total_pairs(self) -> int:
        """Total number of candidate entity pairs across neighborhoods.

        This is the quantity the paper reports ("13K neighborhoods containing
        a total of 1.3M entity pairs"): the sum over neighborhoods of
        ``k * (k - 1) / 2``.
        """
        return sum(len(n) * (len(n) - 1) // 2 for n in self._neighborhoods)

    def stats(self) -> Dict[str, float]:
        sizes = [len(n) for n in self._neighborhoods]
        if not sizes:
            return {"neighborhoods": 0, "entities": 0, "max_size": 0,
                    "mean_size": 0.0, "total_pairs": 0}
        return {
            "neighborhoods": len(sizes),
            "entities": len(self._membership),
            "max_size": max(sizes),
            "mean_size": sum(sizes) / len(sizes),
            "total_pairs": self.total_pairs(),
        }

    def subset(self, count: int) -> "Cover":
        """The cover formed by the first ``count`` neighborhoods (Figure 3(f) sweeps)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return Cover(self._neighborhoods[:count])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (f"Cover(neighborhoods={stats['neighborhoods']}, "
                f"max_size={stats['max_size']}, total_pairs={stats['total_pairs']})")
