"""Standard (key-based) blocking.

Entities are grouped by the value of a blocking key (e.g. the Soundex code of
the last name, or its first letter).  This is the "simple, heuristic grouping
criteria" blocking described in Appendix D; it serves both as a baseline cover
builder and as a building block for multi-pass blocking.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..datamodel import Entity, EntityStore
from ..similarity.phonetic import soundex
from .base import Blocker, KeyFunction
from .cover import Cover, Neighborhood


def last_name_initial_key(entity: Entity) -> str:
    """Blocking key: first letter of the (lower-cased) last name."""
    last = str(entity.get("lname", "")).strip().lower()
    return last[:1] if last else "?"


def last_name_soundex_key(entity: Entity) -> str:
    """Blocking key: Soundex code of the last name."""
    return soundex(str(entity.get("lname", "")))


class StandardBlocker(Blocker):
    """Group entities by one blocking key value per entity."""

    def __init__(self, key: KeyFunction = last_name_soundex_key,
                 entity_type: Optional[str] = "author",
                 max_block_size: Optional[int] = None):
        self.key = key
        self.entity_type = entity_type
        self.max_block_size = max_block_size

    def build_cover(self, store: EntityStore, profiles=None) -> Cover:
        if self.entity_type is not None:
            entities = store.entities_of_type(self.entity_type)
        else:
            entities = store.entities()
        derive = self.key if profiles is None else \
            (lambda entity: profiles.cached_key(self.key, entity))
        blocks: Dict[str, List[str]] = {}
        for entity in sorted(entities, key=lambda e: e.entity_id):
            blocks.setdefault(derive(entity), []).append(entity.entity_id)
        groups: List[List[str]] = []
        for key in sorted(blocks):
            members = blocks[key]
            if self.max_block_size is None or len(members) <= self.max_block_size:
                groups.append(members)
            else:
                # Oversized blocks are split; splitting can lose cross-chunk
                # pairs, which is the classic blocking/recall trade-off the
                # max_block_size knob exposes for the ablation benches.
                for start in range(0, len(members), self.max_block_size):
                    groups.append(members[start:start + self.max_block_size])
        return self._make_neighborhoods(groups, prefix="block-")


class MultiPassBlocker(Blocker):
    """Union of the covers produced by several blockers.

    Classic multi-pass blocking: running several cheap key functions and
    taking all resulting blocks increases the chance that every true match
    shares at least one block.
    """

    def __init__(self, blockers: Sequence[Blocker]):
        if not blockers:
            raise ValueError("MultiPassBlocker needs at least one blocker")
        self.blockers = list(blockers)

    def build_cover(self, store: EntityStore, profiles=None) -> Cover:
        if profiles is None:
            # One shared index so the passes reuse cached keys/tokenizations.
            from ..similarity.profiles import EntityProfileIndex
            profiles = EntityProfileIndex(store.entities())
        neighborhoods: List[Neighborhood] = []
        seen_membership: Set[frozenset] = set()
        for pass_index, blocker in enumerate(self.blockers):
            for neighborhood in blocker.build_cover(store, profiles=profiles):
                membership = frozenset(neighborhood.entity_ids)
                if membership in seen_membership:
                    continue
                seen_membership.add(membership)
                neighborhoods.append(
                    Neighborhood(f"pass{pass_index}-{neighborhood.name}", membership)
                )
        return Cover(neighborhoods)
