"""Parallel cover construction: sharded canopies and boundary expansion.

PR 2 made inference incremental, which leaves cover construction as the
dominant cold-start cost.  :class:`ParallelCoverBuilder` runs the two stages
of the paper's cover pipeline (Section 4) through the executor hierarchy of
:mod:`repro.parallel.executor`:

* **Canopy centers** are processed in *speculative waves*: a canopy is a pure
  function of its center (membership never depends on which entities are
  still candidate centers), so the builder scores the canopies of the next
  ``wave_size`` potential centers in parallel, then replays the sequential
  acceptance sweep over the wave — discarding the speculative canopies of
  centers that an earlier wave member's tight threshold removed.  The
  accepted-center sequence is therefore *identical* to
  :meth:`CanopyBlocker.sweep`, and so is the cover, byte for byte.

* **Boundary expansion** is embarrassingly parallel: neighborhoods are
  chunked across workers and merged back in cover order.

Worker payloads are small and picklable (normalized name parts, candidate id
lists, relation objects), so all of ``serial``/``threads``/``processes``
executors work; parity across executors is asserted in
``tests/test_parallel_cover.py``.
"""

from __future__ import annotations

import functools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from typing import TYPE_CHECKING

from ..datamodel import EntityStore, Relation
from ..similarity.name_similarity import AuthorNameSimilarity, DEFAULT_AUTHOR_SIMILARITY

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..parallel.executor import Executor
from ..similarity.profiles import EntityProfileIndex, ProfiledNameScorer
from .base import Blocker
from .boundary import _attach_leftover_singletons, expand_members, validate_total
from .canopy import CanopyBlocker, author_name_cheap_similarity
from .cover import Cover, Neighborhood

#: Worker result shapes: ``(canopy, removed)`` and expanded member sets.
FrozenSetPair = Tuple[frozenset, frozenset]
FrozenSetMembers = frozenset


def score_canopy_chunk(center_ids: Sequence,
                       center_tokens: Mapping,
                       parts: Mapping,
                       postings: Mapping[str, Sequence],
                       similarity: AuthorNameSimilarity,
                       loose: float, tight: float
                       ) -> List[Tuple[object, FrozenSetPair]]:
    """Worker: canopy + removed sets for each center in the chunk.

    Module-level and driven by picklable payloads so it runs under the
    process executor.  Candidate generation (token postings union) happens
    in the worker — the postings index is far smaller than the candidate
    lists it expands to — and scoring goes through the same
    :class:`~repro.similarity.profiles.ProfiledNameScorer` the serial
    profiled path uses, so scores are bitwise identical.  Entities are keyed
    by entity-id strings for dict stores and by interned integer indices for
    compact stores (the payloads are then a fraction of the size); the
    scorer is generic over the key type.
    """
    scorer = ProfiledNameScorer(parts, similarity)
    # Batched sweep when the worker resolves the numpy kernel backend; the
    # batch scorer shares the memos and replays the scalar arithmetic, so
    # chunk results are bitwise identical across backends (and therefore
    # across mixed fleets).
    batch = scorer.batch_scorer(postings)
    results: List[Tuple[object, FrozenSetPair]] = []
    for center_id in center_ids:
        canopy: Set[str] = {center_id}
        removed: Set[str] = {center_id}
        if batch is not None:
            scored = batch.canopy_scores_from_tokens(
                center_id, center_tokens[center_id], loose)
        else:
            candidates: Set = set()
            for token in center_tokens[center_id]:
                candidates.update(postings.get(token, ()))
            candidates.discard(center_id)
            scored = scorer.canopy_scores(center_id, candidates, loose)
        for candidate_id, score in scored:
            canopy.add(candidate_id)
            if score >= tight:
                removed.add(candidate_id)
        results.append((center_id, (frozenset(canopy), frozenset(removed))))
    return results


def expand_chunk(named_members: Sequence[Tuple[str, Tuple[str, ...]]],
                 relations: Sequence[Relation],
                 rounds: int) -> List[Tuple[str, FrozenSetMembers]]:
    """Worker: boundary-expand each ``(name, member ids)`` neighborhood."""
    return [(name, frozenset(expand_members(relations, members, rounds)))
            for name, members in named_members]


class ParallelCoverBuilder:
    """Builds total covers with a parallel map phase and deterministic merge.

    Parameters
    ----------
    blocker:
        The base cover builder; defaults to :class:`CanopyBlocker`.  Canopy
        center sharding requires a :class:`CanopyBlocker` with the default
        (author-name) similarity and profiles enabled; any other blocker or
        canopy mode falls back to the blocker's own ``build_cover`` for the
        base cover, with boundary expansion still parallelised.
    executor:
        An :class:`~repro.parallel.executor.Executor`, a spec string
        (``"serial"``/``"threads"``/``"processes"``), or ``None`` for serial.
    workers:
        Pool size when ``executor`` is a spec string; also the sharding
        factor for chunking work.
    wave_size:
        Number of speculative canopy centers scored per parallel wave;
        ``None`` (the default) speculates on every potential center in one
        wave, which minimises dispatch/payload overhead at the cost of
        computing canopies for centers a tight-threshold removal would have
        skipped.  Small waves curb that waste when removals are dense (tight
        threshold close to loose).
    relation_names / rounds / validate:
        As in :func:`repro.blocking.boundary.build_total_cover`.
    """

    def __init__(self, blocker: Optional[Blocker] = None,
                 executor: Union["Executor", str, None] = None,
                 workers: Optional[int] = None,
                 wave_size: Optional[int] = None,
                 relation_names: Optional[Iterable[str]] = None,
                 rounds: int = 1, validate: bool = True):
        # Imported lazily: repro.parallel imports from repro.core, which
        # imports this package.
        from ..parallel.executor import SerialExecutor, make_executor
        self.blocker = blocker if blocker is not None else CanopyBlocker()
        if executor is None:
            self.executor: "Executor" = SerialExecutor()
        elif isinstance(executor, str):
            self.executor = make_executor(executor, workers)
        else:
            self.executor = executor
        self.workers = workers if workers is not None else \
            max(1, getattr(self.executor, "workers", 1))
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if wave_size is not None and wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        self.wave_size = wave_size
        self.relation_names = list(relation_names) if relation_names is not None else None
        self.rounds = rounds
        self.validate = validate

    # ------------------------------------------------------------- map phase
    def _map(self, tasks: Sequence) -> Dict:
        return self.executor.map_tasks(tasks)

    @staticmethod
    def _chunks(items: Sequence, count: int) -> List[Sequence]:
        """Split ``items`` into at most ``count`` contiguous, near-even chunks."""
        if not items:
            return []
        count = min(count, len(items))
        size, extra = divmod(len(items), count)
        chunks, start = [], 0
        for index in range(count):
            end = start + size + (1 if index < extra else 0)
            chunks.append(items[start:end])
            start = end
        return chunks

    # ----------------------------------------------------------- base cover
    def _supports_sharded_canopies(self) -> bool:
        return (isinstance(self.blocker, CanopyBlocker)
                and self.blocker.use_profiles
                and self.blocker.similarity is author_name_cheap_similarity)

    def build_cover(self, store: EntityStore,
                    profiles: Optional[EntityProfileIndex] = None) -> Cover:
        """The base (canopy) cover, with centers scored in parallel waves."""
        if not self._supports_sharded_canopies():
            return self.blocker.build_cover(store, profiles=profiles)

        blocker: CanopyBlocker = self.blocker
        entities = blocker.clustered_entities(store)
        index = blocker.profile_index(entities, profiles)
        # Against a CompactStore the whole pipeline runs in the snapshot's
        # interned integer id space: candidate postings, name parts and the
        # worker payloads carry small ints instead of entity-id strings, and
        # only the accepted canopies are decoded back at the end.  The scorer
        # is generic over the key type, so covers are identical either way.
        interner = getattr(store, "interner", None)
        if interner is not None:
            space = index.interned_space(interner)
            parts = space.parts
            postings = space.postings

            def tokens_of(center_id):
                return space.tokens[center_id]

            def text_of(center_id):
                return index.profile(interner.id_of(center_id)).text

            decode = space.decode
            order = [interner.index_of(entity_id)
                     for entity_id in blocker.shuffled_order(entities)]
        else:
            parts = index.name_parts()
            postings = {token: tuple(ids) for token, ids in index.postings.items()}

            def tokens_of(center_id):
                return tuple(index.profile(center_id).token_set)

            def text_of(center_id):
                return index.profile(center_id).text

            decode = set
            order = blocker.shuffled_order(entities)
        wave_size = self.wave_size if self.wave_size is not None else len(order)

        # Entities with identical raw text AND identical normalized parts are
        # fully interchangeable: same token set (hence the same candidate
        # relationships, in both directions) and same scores against
        # everything.  Such a group leaves (or stays in) the candidate-center
        # pool together, and — provided the group's tokens are non-empty, so
        # its members actually appear in each other's candidate sets — a
        # group whose self-score reaches the tight threshold has its first
        # member in sweep order remove all the others; speculating on them
        # would be pure waste.  Grouping by parts alone would be unsound:
        # normalize_name_part strips characters the tokenizer keeps, so
        # equal parts do not imply shared tokens.
        similarity = DEFAULT_AUTHOR_SIMILARITY
        self_removing: Dict[Tuple[str, str], bool] = {}

        def removes_own_group(center_id) -> bool:
            if not tokens_of(center_id):
                # Token-less entities never appear in any candidate set, so
                # nothing — not even an identical twin — can remove them.
                return False
            key = parts[center_id]
            flag = self_removing.get(key)
            if flag is None:
                first, last = key
                flag = similarity.score_normalized(first, last, first, last) \
                    >= blocker.tight_threshold
                self_removing[key] = flag
            return flag

        remaining: Set = set(order)
        canopies: List[Set[str]] = []
        position = 0
        while position < len(order):
            # Collect the next wave of still-available potential centers.
            wave: List = []
            seen_groups: Set[Tuple[str, Tuple[str, str]]] = set()
            while position < len(order) and len(wave) < wave_size:
                center_id = order[position]
                position += 1
                if center_id not in remaining:
                    continue
                group = (text_of(center_id), parts[center_id])
                if group in seen_groups and removes_own_group(center_id):
                    # An earlier wave member with identical text and parts
                    # removes this entity before its turn could ever come.
                    continue
                seen_groups.add(group)
                wave.append(center_id)
            if not wave:
                continue
            # Chunk assignment is free to differ from sweep order: group
            # centers by name so each worker's candidates (and therefore its
            # Jaro-Winkler memo entries) stay chunk-local instead of every
            # worker re-deriving the same cross-cutting distinct pairs.
            by_name = sorted(wave, key=lambda cid: (parts[cid][1], parts[cid][0], cid))
            tasks = []
            for chunk_index, chunk in enumerate(self._chunks(by_name, self.workers)):
                center_tokens = {
                    center_id: tokens_of(center_id)
                    for center_id in chunk
                }
                tasks.append(
                    (f"canopy-chunk-{chunk_index}",
                     functools.partial(score_canopy_chunk, chunk, center_tokens,
                                       parts, postings,
                                       DEFAULT_AUTHOR_SIMILARITY,
                                       blocker.loose_threshold,
                                       blocker.tight_threshold)))
            speculated: Dict = {}
            for chunk_result in self._map(tasks).values():
                speculated.update(chunk_result)
            # Sequential replay of the acceptance sweep over the wave: a
            # speculative canopy is discarded when an earlier wave member's
            # tight threshold already removed its center.
            for center_id in wave:
                if center_id not in remaining:
                    continue
                canopy, removed = speculated[center_id]
                remaining -= removed
                canopies.append(decode(canopy))

        assigned: Set[str] = set()
        for canopy in canopies:
            assigned |= canopy
        for entity in entities:
            if entity.entity_id not in assigned:
                canopies.append({entity.entity_id})
        return Blocker._make_neighborhoods(canopies, prefix="canopy-")

    # ------------------------------------------------------------- expansion
    def expand(self, cover: Cover, store: EntityStore) -> Cover:
        """Boundary-expand ``cover`` with neighborhoods sharded across workers."""
        names = self.relation_names if self.relation_names is not None \
            else store.relation_names()
        relations = [store.relation(name) for name in names]
        named_members = [(neighborhood.name, tuple(sorted(neighborhood.entity_ids)))
                         for neighborhood in cover]
        tasks = [
            (f"expand-chunk-{chunk_index}",
             functools.partial(expand_chunk, chunk, relations, self.rounds))
            for chunk_index, chunk in enumerate(self._chunks(named_members, self.workers))
        ]
        expanded_by_name: Dict[str, frozenset] = {}
        for chunk_result in self._map(tasks).values():
            expanded_by_name.update(chunk_result)
        expanded = [Neighborhood(neighborhood.name, expanded_by_name[neighborhood.name])
                    for neighborhood in cover]
        return _attach_leftover_singletons(expanded, store)

    # ---------------------------------------------------------------- pipeline
    def build_total_cover(self, store: EntityStore,
                          profiles: Optional[EntityProfileIndex] = None) -> Cover:
        """Parallel base cover + parallel boundary expansion (+ validation)."""
        with self.executor:
            total = self.expand(self.build_cover(store, profiles), store)
        if self.validate:
            validate_total(total, store, self.relation_names)
        return total
