"""Blocker interface.

A *blocker* turns an :class:`~repro.datamodel.store.EntityStore` into a
:class:`~repro.blocking.cover.Cover`.  Concrete blockers include Canopy
clustering (the one used in the paper), standard key-based blocking, sorted
neighborhood and token blocking.  Blockers only group entities; turning the
cover into a *total* cover is the job of
:func:`repro.blocking.boundary.expand_to_total_cover`.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, List, Optional

from ..datamodel import Entity, EntityStore
from .cover import Cover, Neighborhood


class Blocker(abc.ABC):
    """Abstract base class of all cover builders."""

    @abc.abstractmethod
    def build_cover(self, store: EntityStore) -> Cover:
        """Build a cover of the entities in ``store``."""

    @staticmethod
    def _make_neighborhoods(groups: Iterable[Iterable[str]], prefix: str) -> Cover:
        """Helper turning groups of entity ids into a named cover.

        Singleton groups are kept: every entity must appear in some
        neighborhood for the result to be a cover (the framework later skips
        neighborhoods that cannot produce pairs).
        """
        neighborhoods: List[Neighborhood] = []
        for index, group in enumerate(groups):
            ids = frozenset(group)
            if not ids:
                continue
            neighborhoods.append(Neighborhood(f"{prefix}{index}", ids))
        return Cover(neighborhoods)


#: A blocking key function maps an entity to one key (or several, see
#: :class:`repro.blocking.token_blocking.TokenBlocker`).
KeyFunction = Callable[[Entity], str]
