"""Blocker interface.

A *blocker* turns an :class:`~repro.datamodel.store.EntityStore` into a
:class:`~repro.blocking.cover.Cover`.  Concrete blockers include Canopy
clustering (the one used in the paper), standard key-based blocking, sorted
neighborhood and token blocking.  Blockers only group entities; turning the
cover into a *total* cover is the job of
:func:`repro.blocking.boundary.expand_to_total_cover`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from ..datamodel import Entity, EntityStore
from .cover import Cover, Neighborhood

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ..similarity.profiles import EntityProfileIndex


class Blocker(abc.ABC):
    """Abstract base class of all cover builders."""

    @abc.abstractmethod
    def build_cover(self, store: EntityStore,
                    profiles: Optional["EntityProfileIndex"] = None) -> Cover:
        """Build a cover of the entities in ``store``.

        ``profiles`` may supply a prebuilt
        :class:`~repro.similarity.profiles.EntityProfileIndex` so repeated
        builds (or multi-pass pipelines) share tokenizations and cached
        blocking keys; blockers must produce the same cover with or without
        it.
        """

    @staticmethod
    def _make_neighborhoods(groups: Iterable[Iterable[str]], prefix: str) -> Cover:
        """Helper turning groups of entity ids into a named cover.

        Singleton groups are kept: every entity must appear in some
        neighborhood for the result to be a cover (the framework later skips
        neighborhoods that cannot produce pairs).
        """
        neighborhoods: List[Neighborhood] = []
        for index, group in enumerate(groups):
            ids = frozenset(group)
            if not ids:
                continue
            neighborhoods.append(Neighborhood(f"{prefix}{index}", ids))
        return Cover(neighborhoods)


#: A blocking key function maps an entity to one key (or several, see
#: :class:`repro.blocking.token_blocking.TokenBlocker`).
KeyFunction = Callable[[Entity], str]
