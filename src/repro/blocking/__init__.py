"""Blocking and covering: neighborhoods, covers, total covers (Section 4)."""

from .base import Blocker, KeyFunction
from .boundary import (
    build_total_cover,
    expand_members,
    expand_to_total_cover,
    neighborhood_boundary,
    relations_boundary,
    validate_total,
)
from .canopy import CanopyBlocker, author_name_cheap_similarity
from .cover import Cover, Neighborhood
from .parallel_cover import ParallelCoverBuilder
from .sorted_neighborhood import SortedNeighborhoodBlocker, full_name_sort_key
from .standard import (
    MultiPassBlocker,
    StandardBlocker,
    last_name_initial_key,
    last_name_soundex_key,
)
from .token_blocking import TokenBlocker

__all__ = [
    "Blocker",
    "CanopyBlocker",
    "Cover",
    "KeyFunction",
    "MultiPassBlocker",
    "Neighborhood",
    "ParallelCoverBuilder",
    "SortedNeighborhoodBlocker",
    "StandardBlocker",
    "TokenBlocker",
    "author_name_cheap_similarity",
    "build_total_cover",
    "expand_members",
    "expand_to_total_cover",
    "full_name_sort_key",
    "last_name_initial_key",
    "last_name_soundex_key",
    "neighborhood_boundary",
    "relations_boundary",
    "validate_total",
]
