"""Token blocking: one block per (rare enough) token.

Every entity is placed in one block per token appearing in its text
attributes.  Tokens that occur in too many entities are dropped (they produce
uselessly large blocks).  Token blocking gives high recall covers at the cost
of many overlapping neighborhoods — a useful stress test for the
message-passing framework since entities appear in many neighborhoods.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..datamodel import Entity, EntityStore
from ..similarity.ngram import word_tokens
from .base import Blocker
from .cover import Cover


class TokenBlocker(Blocker):
    """Block on word tokens of selected attributes."""

    def __init__(self, attributes: Sequence[str] = ("lname",),
                 entity_type: Optional[str] = "author",
                 max_block_size: int = 200, min_token_length: int = 2):
        if max_block_size < 2:
            raise ValueError("max_block_size must be >= 2")
        self.attributes = tuple(attributes)
        self.entity_type = entity_type
        self.max_block_size = max_block_size
        self.min_token_length = min_token_length

    def _tokens(self, entity: Entity, profiles=None) -> Set[str]:
        if profiles is not None:
            tokens: Set[str] = profiles.word_tokens_of(entity, self.attributes)
        else:
            tokens = set()
            for attribute in self.attributes:
                tokens.update(word_tokens(str(entity.get(attribute, ""))))
        return {t for t in tokens if len(t) >= self.min_token_length}

    def build_cover(self, store: EntityStore, profiles=None) -> Cover:
        if self.entity_type is not None:
            entities = store.entities_of_type(self.entity_type)
        else:
            entities = store.entities()
        blocks: Dict[str, List[str]] = {}
        for entity in sorted(entities, key=lambda e: e.entity_id):
            tokens = self._tokens(entity, profiles)
            if not tokens:
                continue
            for token in tokens:
                blocks.setdefault(token, []).append(entity.entity_id)
        groups: List[List[str]] = [
            members for token, members in sorted(blocks.items())
            if len(members) <= self.max_block_size
        ]
        # Entities whose every token was dropped (or that had no tokens) still
        # need to be covered; give each a singleton neighborhood.
        covered = {entity_id for group in groups for entity_id in group}
        for entity in sorted(entities, key=lambda e: e.entity_id):
            if entity.entity_id not in covered:
                groups.append([entity.entity_id])
        return self._make_neighborhoods(groups, prefix="token-")
