"""Boundary expansion: turning any cover into a total cover (Section 4).

The boundary of a neighborhood ``C`` is the set of entities ``e`` for which
there is an entity ``e'`` in ``C`` such that both occur together in some
relation tuple.  Expanding every neighborhood by its boundary yields a total
cover: every relation tuple has at least one member in some neighborhood, so
after expansion the whole tuple is inside that neighborhood.

The paper's covers are built this way: Canopies over the ``Similar`` relation
followed by boundary expansion with respect to the other relations (Coauthor,
Authored, Cites), which is what brings dissimilar entities — and entities of
different types, e.g. papers — into the same neighborhood.

The implementation is inverted relative to the definition: instead of one
neighbor lookup per member per relation (each allocating a fresh neighbor
set), each relation is traversed once per round via
:meth:`~repro.datamodel.relation.Relation.tuples_touching`, and multi-round
expansion only follows the *frontier* — the members added in the previous
round — since older members' neighbors are already inside.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..datamodel import EntityStore, Relation
from ..exceptions import CoverError
from .cover import Cover, Neighborhood


def relations_boundary(relations: Sequence[Relation], members: Set[str]) -> Set[str]:
    """Entities outside ``members`` sharing a tuple of any relation with a member."""
    boundary: Set[str] = set()
    for relation in relations:
        for tup in relation.tuples_touching(members):
            boundary.update(tup)
    return boundary - members


def _shared_interner(relations: Sequence[Relation]):
    """The common id interner when *all* relations are compact, else ``None``.

    :class:`~repro.datamodel.CompactRelation` objects built from one
    :class:`~repro.datamodel.CompactStore` share the store's interner; when a
    neighborhood is expanded against such relations the whole multi-round
    expansion can run in integer space (one CSR walk per round, no string
    re-keying) and decode once at the end.
    """
    interner = None
    for relation in relations:
        candidate = getattr(relation, "interner", None)
        if candidate is None:
            return None
        if interner is None:
            interner = candidate
        elif candidate is not interner:
            return None
    return interner


def expand_members(relations: Sequence[Relation], entity_ids: Iterable[str],
                   rounds: int = 1) -> Set[str]:
    """``rounds`` rounds of boundary expansion of one neighborhood's members.

    After the first round only the frontier (the previously added entities)
    is followed: a member added in round ``k`` already pulled in all of its
    relation partners, so re-scanning it in round ``k + 1`` cannot add
    anything new.  The result is identical to re-expanding the full member
    set every round.

    When every relation is a :class:`~repro.datamodel.CompactRelation` over
    one shared interner the expansion runs in the interned integer space and
    decodes the member set once at the end (same result, asserted by
    ``tests/test_compact_store.py``).
    """
    interner = _shared_interner(relations)
    if interner is not None:
        # Ids outside the snapshot can touch no tuple; like the string path,
        # they pass through into the result untouched.
        int_members: Set[int] = set()
        unknown: Set[str] = set()
        for entity_id in entity_ids:
            if entity_id in interner:
                int_members.add(interner.index_of(entity_id))
            else:
                unknown.add(entity_id)
        int_frontier = int_members
        for _ in range(rounds):
            touched: Set[int] = set()
            for relation in relations:
                touched |= relation.member_indices_touching(int_frontier)
            fresh_indices = touched - int_members
            if not fresh_indices:
                break
            int_members |= fresh_indices
            int_frontier = fresh_indices
        return set(interner.ids_of(int_members)) | unknown

    members: Set[str] = set(entity_ids)
    frontier = members
    for _ in range(rounds):
        fresh = relations_boundary(relations, frontier) - members
        if not fresh:
            break
        members |= fresh
        frontier = fresh
    return members


def neighborhood_boundary(store: EntityStore, entity_ids: Iterable[str],
                          relation_names: Optional[Iterable[str]] = None) -> Set[str]:
    """Entities outside ``entity_ids`` sharing a relation tuple with a member.

    Parameters
    ----------
    store:
        The full entity store providing the relations.
    entity_ids:
        The neighborhood being expanded.
    relation_names:
        Relations to follow; defaults to every relation in the store.
    """
    names = list(relation_names) if relation_names is not None else store.relation_names()
    return relations_boundary([store.relation(name) for name in names],
                              set(entity_ids))


def expand_to_total_cover(cover: Cover, store: EntityStore,
                          relation_names: Optional[Iterable[str]] = None,
                          rounds: int = 1) -> Cover:
    """Expand every neighborhood of ``cover`` by its boundary.

    One round of expansion makes every relation tuple that *touches* a covered
    entity fully contained in some neighborhood; when every entity of the
    relations is covered by the base cover (the typical case: canopies over
    the author references, boundary over the reference-level ``coauthor``
    relation) the result is therefore a total cover.  Tuples none of whose
    members appear in the base cover (e.g. paper-to-paper ``cites`` tuples
    under an author-only cover) may need more ``rounds`` or a different base
    cover; pass only the relations the matcher actually uses via
    ``relation_names``.

    Entities of the store that appear in no neighborhood at all (e.g. papers
    when the base cover only clustered authors) are attached to the
    neighborhoods of their related entities by the same expansion; entities
    related to nothing and covered by nothing are collected into singleton
    neighborhoods so the result is always a cover of the full store.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    names = list(relation_names) if relation_names is not None else store.relation_names()
    relations = [store.relation(name) for name in names]

    expanded: List[Neighborhood] = [
        Neighborhood(neighborhood.name,
                     frozenset(expand_members(relations, neighborhood.entity_ids, rounds)))
        for neighborhood in cover
    ]
    return attach_leftover_singletons(expanded, store)


def attach_leftover_singletons(expanded: List[Neighborhood],
                               store: EntityStore) -> Cover:
    """Cover of ``expanded`` plus a singleton per still-uncovered store entity.

    Public because the streaming cover maintainer replays exactly this step
    when it rebuilds a total cover incrementally.
    """
    covered: Set[str] = set()
    for neighborhood in expanded:
        covered.update(neighborhood.entity_ids)
    leftovers = sorted(store.entity_ids() - covered)
    for index, entity_id in enumerate(leftovers):
        expanded.append(Neighborhood(f"singleton-{index}", frozenset({entity_id})))
    return Cover(expanded)


#: Backwards-compatible private alias.
_attach_leftover_singletons = attach_leftover_singletons


def build_total_cover(blocker, store: EntityStore,
                      relation_names: Optional[Iterable[str]] = None,
                      rounds: int = 1, validate: bool = True) -> Cover:
    """Convenience pipeline: run ``blocker`` then expand to a total cover.

    When ``validate`` is true the resulting cover is checked to be total with
    respect to the requested relations and a :class:`CoverError` is raised
    otherwise — a cheap sanity check that catches mis-configured relation
    names early.
    """
    base_cover = blocker.build_cover(store)
    total = expand_to_total_cover(base_cover, store, relation_names, rounds)
    if validate:
        validate_total(total, store, relation_names)
    return total


def validate_total(cover: Cover, store: EntityStore,
                   relation_names: Optional[Iterable[str]] = None) -> None:
    """Raise :class:`CoverError` unless ``cover`` is total w.r.t. the relations."""
    names = list(relation_names) if relation_names is not None else store.relation_names()
    missing = cover.uncovered_tuples(store, names)
    if missing:
        relation, tuples = next(iter(missing.items()))
        raise CoverError(
            f"boundary expansion failed to produce a total cover: relation {relation!r} "
            f"has {len(tuples)} uncovered tuples (e.g. {tuples[0]})"
        )
