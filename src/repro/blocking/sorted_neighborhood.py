"""Sorted-neighborhood blocking.

Entities are sorted by a key (typically ``lname + fname``) and a fixed-size
window is slid over the sorted order; each window position becomes a
neighborhood.  A classic alternative to canopies that guarantees bounded
neighborhood sizes at the cost of missing matches whose keys sort far apart.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..datamodel import Entity, EntityStore
from .base import Blocker, KeyFunction
from .cover import Cover


def full_name_sort_key(entity: Entity) -> str:
    """Default sort key: normalised ``lname fname``."""
    last = str(entity.get("lname", "")).strip().lower()
    first = str(entity.get("fname", "")).strip().lower()
    return f"{last} {first}"


class SortedNeighborhoodBlocker(Blocker):
    """Sliding-window blocking over a sorted key order.

    Parameters
    ----------
    window_size:
        Number of consecutive entities per neighborhood (≥ 2).
    step:
        Offset between consecutive windows; ``step < window_size`` makes the
        windows overlap, which is required for the result to behave like a
        cover rather than a partition.
    """

    def __init__(self, window_size: int = 10, step: Optional[int] = None,
                 key: KeyFunction = full_name_sort_key,
                 entity_type: Optional[str] = "author"):
        if window_size < 2:
            raise ValueError("window_size must be >= 2")
        self.window_size = window_size
        self.step = step if step is not None else max(1, window_size // 2)
        if self.step < 1:
            raise ValueError("step must be >= 1")
        self.key = key
        self.entity_type = entity_type

    def build_cover(self, store: EntityStore, profiles=None) -> Cover:
        if self.entity_type is not None:
            entities = store.entities_of_type(self.entity_type)
        else:
            entities = store.entities()
        derive = self.key if profiles is None else \
            (lambda entity: profiles.cached_key(self.key, entity))
        ordered = sorted(entities, key=lambda e: (derive(e), e.entity_id))
        ids = [entity.entity_id for entity in ordered]
        if not ids:
            return Cover([])
        groups: List[List[str]] = []
        start = 0
        while True:
            window = ids[start:start + self.window_size]
            if window:
                groups.append(window)
            if start + self.window_size >= len(ids):
                break
            start += self.step
        return self._make_neighborhoods(groups, prefix="window-")
