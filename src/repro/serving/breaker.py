"""Circuit breaker around the commit loop: trip to read-only, probe back.

The commit loop applies delta batches through the wrapped stream session.
A *persistent* commit failure — a grid task that exhausted its whole
fault-tolerance budget (:class:`~repro.exceptions.TaskFailedError`) or a
broken WAL/checkpoint substrate
(:class:`~repro.exceptions.DurabilityError`) — must not kill the service:
reads are still perfectly serveable from the last published epoch.  The
breaker encodes that degradation ladder:

* **closed** — commits flow; each success resets the failure streak;
* **open** — after ``threshold`` consecutive failures the breaker trips,
  the service drops to **read-only mode** (writes refused with
  :class:`~repro.exceptions.ServiceReadOnlyError`, advertised via
  ``/health``), and stays there for ``cooldown`` seconds;
* **half-open** — after the cooldown exactly one probe batch is admitted;
  success closes the breaker (read-write restored), failure re-opens it
  for another cooldown.

State transitions happen under a lock and the clock is injectable, so the
trip/recover schedule is fully deterministic in tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

Clock = Callable[[], float]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing (see module docs)."""

    def __init__(self, threshold: int = 3, cooldown: float = 5.0,
                 clock: Clock = time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Lifetime counters.
        self.trips = 0
        self.probes = 0
        self.recoveries = 0

    # ------------------------------------------------------------- queries
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allows_writes(self) -> bool:
        """Closed, or open-with-cooldown-elapsed (a probe may be admitted)."""
        with self._lock:
            return self._state == CLOSED or self._probe_due_locked()

    def retry_after(self) -> float:
        """Remaining cooldown (the ``Retry-After`` hint while open)."""
        with self._lock:
            if self._state == CLOSED:
                return 0.0
            return max(0.0, self._opened_at + self.cooldown - self._clock())

    # --------------------------------------------------------- transitions
    def _probe_due_locked(self) -> bool:
        if self._probe_inflight:
            return False
        if self._state == HALF_OPEN:
            return True
        return self._state == OPEN and \
            self._clock() - self._opened_at >= self.cooldown

    def admit(self) -> bool:
        """Whether one write may proceed right now.

        Closed: always.  Open: only once the cooldown elapsed, and then
        exactly one caller wins the half-open probe slot; everyone else is
        refused until the probe settles.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if not self._probe_due_locked():
                return False
            self._state = HALF_OPEN
            self._probe_inflight = True
            self.probes += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state != CLOSED:
                self.recoveries += 1
            self._state = CLOSED
            self._failures = 0
            self._probe_inflight = False

    def release_probe(self) -> None:
        """Void a half-open probe whose outcome says nothing about the
        substrate (e.g. the probe batch was malformed): return to open with
        the cooldown already elapsed, so the next write probes again."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
            elif self._state == CLOSED and self._failures >= self.threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown,
                "trips": self.trips,
                "probes": self.probes,
                "recoveries": self.recoveries,
            }
