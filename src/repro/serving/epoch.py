"""Immutable read epochs: the snapshot a resolution request pins.

An :class:`Epoch` is everything a read needs, frozen at one committed batch
boundary: the standing match set, the entity universe of the instance at
that point, and a canonical-cluster index (union-find over the transitive
closure of the matches, canonical member = lexicographic minimum).  Epochs
are *immutable after construction* — the serving layer publishes a new
epoch with one atomic reference swap per committed batch, so:

* a reader that pinned an epoch keeps a consistent view for its whole
  request, no matter how many commits land meanwhile;
* commits never block reads and reads never block commits — there is no
  read lock, only the single reference assignment (atomic under CPython);
* two lookups inside one request can never observe different batches
  (no torn commit), which is the property the threaded epoch-swap tests
  hammer on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..datamodel import EntityPair
from ..exceptions import UnknownEntityError


class Epoch:
    """One immutable, fully-indexed snapshot of the standing match set."""

    __slots__ = ("epoch_id", "matches", "entity_ids", "_canonical",
                 "_members")

    def __init__(self, epoch_id: int, matches: FrozenSet[EntityPair],
                 entity_ids: Iterable[str]):
        self.epoch_id = epoch_id
        self.matches = frozenset(matches)
        self.entity_ids = frozenset(entity_ids)
        self._canonical, self._members = self._index(self.matches)

    @staticmethod
    def _index(matches: FrozenSet[EntityPair]) -> Tuple[Dict[str, str],
                                                        Dict[str, Tuple[str, ...]]]:
        """Union-find over the matches; canonical = min id of the cluster."""
        parent: Dict[str, str] = {}

        def find(entity_id: str) -> str:
            root = entity_id
            while parent[root] != root:
                root = parent[root]
            while parent[entity_id] != root:  # path compression
                parent[entity_id], entity_id = root, parent[entity_id]
            return root

        for pair in matches:
            for entity_id in pair:
                parent.setdefault(entity_id, entity_id)
            first, second = find(pair.first), find(pair.second)
            if first != second:
                parent[max(first, second)] = min(first, second)

        clusters: Dict[str, List[str]] = {}
        for entity_id in parent:
            clusters.setdefault(find(entity_id), []).append(entity_id)
        canonical: Dict[str, str] = {}
        members: Dict[str, Tuple[str, ...]] = {}
        for root, ids in clusters.items():
            ordered = tuple(sorted(ids))
            head = ordered[0]
            for entity_id in ordered:
                canonical[entity_id] = head
            members[head] = ordered
        return canonical, members

    # -------------------------------------------------------------- queries
    def _require(self, entity_id: str) -> None:
        if entity_id not in self.entity_ids:
            raise UnknownEntityError(entity_id)

    def resolve(self, entity_id: str) -> str:
        """The canonical representative of ``entity_id``'s cluster."""
        self._require(entity_id)
        return self._canonical.get(entity_id, entity_id)

    def cluster(self, entity_id: str) -> Tuple[str, ...]:
        """All members of ``entity_id``'s cluster, sorted (singleton when
        the entity matched nothing)."""
        self._require(entity_id)
        head = self._canonical.get(entity_id)
        if head is None:
            return (entity_id,)
        return self._members[head]

    def same(self, first: str, second: str) -> bool:
        """Whether two entities resolve to the same canonical entity."""
        self._require(first)
        self._require(second)
        if first == second:
            return True
        head_a = self._canonical.get(first)
        head_b = self._canonical.get(second)
        return head_a is not None and head_a == head_b

    def cluster_count(self) -> int:
        """Non-singleton clusters in this epoch."""
        return len(self._members)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self.entity_ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Epoch(id={self.epoch_id}, matches={len(self.matches)}, "
                f"entities={len(self.entity_ids)})")
