"""Admission control: bounded queues, a max-inflight gate, deadlines.

Overload policy of the serving layer, in one place:

* :class:`AdmissionGate` — at most ``max_inflight`` requests execute at
  once; up to ``max_waiting`` more may queue for a slot.  Anything beyond
  that is **shed immediately** with
  :class:`~repro.exceptions.ServiceOverloadedError` (HTTP 429 +
  ``Retry-After``) instead of growing an unbounded backlog — under
  saturation the latency of *accepted* requests stays bounded by
  ``max_waiting / throughput``, which is the property the overload
  benchmark asserts.
* :class:`Deadline` — a monotonic per-request budget.  A request that
  cannot get a slot (or finish) inside its budget fails with
  :class:`~repro.exceptions.DeadlineExceededError` (HTTP 504); a late
  response is worthless, so the server stops working on it at the next
  check.

Both are plain threading constructs with an injectable clock so tests and
benchmarks drive them deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..exceptions import DeadlineExceededError, ServiceOverloadedError

Clock = Callable[[], float]


class Deadline:
    """A monotonic deadline: ``budget`` seconds from construction."""

    __slots__ = ("expires_at", "_clock")

    def __init__(self, budget: float, clock: Clock = time.monotonic):
        self._clock = clock
        self.expires_at = clock() + budget

    def remaining(self) -> float:
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "request") -> None:
        """Raise the typed 504 when the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(f"{what} missed its deadline")


class AdmissionGate:
    """Bounded-concurrency gate with a bounded wait queue (see module docs)."""

    def __init__(self, max_inflight: int, max_waiting: int,
                 retry_after: float = 0.5, clock: Clock = time.monotonic):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_waiting < 0:
            raise ValueError("max_waiting must be >= 0")
        self.max_inflight = max_inflight
        self.max_waiting = max_waiting
        self.retry_after = retry_after
        self._clock = clock
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self.inflight = 0
        self.waiting = 0
        #: Lifetime counters (read under the lock by ``stats``).
        self.admitted_total = 0
        self.shed_total = 0
        self.deadline_total = 0

    def acquire(self, deadline: Optional[Deadline] = None) -> None:
        """Take an execution slot, or shed/expire the request.

        Raises :class:`ServiceOverloadedError` when the wait queue is full
        (immediate shed — the caller should retry after ``retry_after``) and
        :class:`DeadlineExceededError` when the slot does not free up inside
        the request's deadline.
        """
        with self._slot_free:
            if self.inflight < self.max_inflight:
                self.inflight += 1
                self.admitted_total += 1
                return
            if self.waiting >= self.max_waiting:
                self.shed_total += 1
                raise ServiceOverloadedError(
                    f"server saturated: {self.inflight} in flight, "
                    f"{self.waiting} waiting (max_waiting={self.max_waiting})",
                    retry_after=self.retry_after)
            self.waiting += 1
            try:
                while self.inflight >= self.max_inflight:
                    if deadline is None:
                        self._slot_free.wait()
                        continue
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        self.deadline_total += 1
                        raise DeadlineExceededError(
                            "request expired while queued for a slot")
                    self._slot_free.wait(remaining)
                self.inflight += 1
                self.admitted_total += 1
            finally:
                self.waiting -= 1

    def release(self) -> None:
        with self._slot_free:
            self.inflight -= 1
            self._slot_free.notify()

    def __enter__(self) -> "AdmissionGate":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def stats(self) -> dict:
        with self._lock:
            return {
                "inflight": self.inflight,
                "waiting": self.waiting,
                "max_inflight": self.max_inflight,
                "max_waiting": self.max_waiting,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "deadline_total": self.deadline_total,
            }
