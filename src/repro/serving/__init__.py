"""Resilient match serving: an always-available resolution service.

The streaming layer maintains a standing match set; this package turns it
into a *service*: epoch-snapshot reads over an immutable
:class:`~repro.serving.epoch.Epoch` published per committed batch,
admission control with bounded queues and load shedding
(:class:`~repro.serving.admission.AdmissionGate`), graceful degradation to
read-only mode behind a commit
:class:`~repro.serving.breaker.CircuitBreaker`, a crash-safe
``starting → ready → draining → stopped`` lifecycle with recovery-gated
readiness (:class:`~repro.serving.service.MatchService`), and a stdlib
HTTP frontend (:class:`~repro.serving.http.MatchServingHTTPServer`).
"""

from .admission import AdmissionGate, Deadline
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .epoch import Epoch
from .http import MatchServingHTTPServer
from .service import (
    DRAINING,
    FAILED,
    READY,
    STARTING,
    STOPPED,
    CommitTicket,
    MatchService,
    ServiceConfig,
)

__all__ = [
    "AdmissionGate",
    "CLOSED",
    "CircuitBreaker",
    "CommitTicket",
    "DRAINING",
    "Deadline",
    "Epoch",
    "FAILED",
    "HALF_OPEN",
    "MatchService",
    "MatchServingHTTPServer",
    "OPEN",
    "READY",
    "STARTING",
    "STOPPED",
    "ServiceConfig",
]
