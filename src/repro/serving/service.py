"""The resolution service: epoch reads, single-writer commits, lifecycle.

:class:`MatchService` turns a standing
:class:`~repro.streaming.StreamSession` (or its durable wrapper) into a
long-lived, always-available resolution service:

* **epoch-snapshot reads** — every read pins the current immutable
  :class:`~repro.serving.epoch.Epoch` once and answers entirely from it; a
  new epoch is published with one atomic reference swap after each
  committed batch, so readers never observe a torn commit and commits
  never block reads;
* **single-writer commit loop** — delta batches enter a bounded queue and
  are applied by one background thread in arrival order (the session is
  single-writer by construction; the queue is the serialization point);
* **admission control** — reads pass an
  :class:`~repro.serving.admission.AdmissionGate` (max-inflight +
  bounded wait queue, shed with 429, per-request deadline with 504);
  writes are shed when the commit queue is full;
* **graceful degradation** — a
  :class:`~repro.serving.breaker.CircuitBreaker` trips the service to
  read-only mode on repeated :class:`~repro.exceptions.TaskFailedError` /
  :class:`~repro.exceptions.DurabilityError` commits and probes its way
  back half-open, instead of dying;
* **crash-safe lifecycle** — ``starting → ready → draining → stopped``;
  readiness is gated until startup (including
  :meth:`~repro.durability.DurableStreamSession.recover` from a durable
  directory) completes, and :meth:`drain` finishes every accepted batch,
  writes a final checkpoint (durable sessions) and stops cleanly — a
  drained-then-recovered service is byte-identical to one that never
  stopped.
"""

from __future__ import annotations

import queue
import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..exceptions import (
    DataModelError,
    DeltaError,
    ServiceError,
    ServiceOverloadedError,
    ServiceReadOnlyError,
    ServiceUnavailableError,
)
from ..obs import registry as obs_registry
from ..obs.exposition import render_prometheus
from ..obs.trace import span
from ..streaming.deltas import ChangeBatch
from ..streaming.runner import BatchResult
from .admission import AdmissionGate, Deadline
from .breaker import CircuitBreaker
from .epoch import Epoch

Clock = Callable[[], float]

#: Operational counters every service instance registers (legacy key →
#: help text).  The legacy keys survive as the ``counters`` block of the
#: JSON :meth:`MatchService.metrics` document; the registry names are the
#: same keys under a ``service_`` prefix.
_COUNTER_HELP = {
    "reads_total": "Read requests received",
    "reads_ok": "Read requests answered successfully",
    "reads_failed": "Read requests shed, timed out or errored",
    "deltas_accepted": "Delta batches accepted into the commit queue",
    "deltas_shed": "Delta batches shed because the commit queue was full",
    "deltas_invalid": "Delta batches rejected by pre-commit validation",
    "deltas_rejected_read_only": "Delta batches refused in read-only mode",
    "commits_total": "Delta batches committed",
    "commit_failures": "Delta batches that failed during commit",
    "epochs_published": "Epoch snapshots published",
}

#: Lifecycle states (monotone except ready ↔ read-only, which is a mode,
#: not a state: the breaker owns it).
STARTING = "starting"
READY = "ready"
DRAINING = "draining"
STOPPED = "stopped"
FAILED = "failed"

_STOP = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of one :class:`MatchService` (validated up front)."""

    #: Reads executing at once; beyond this they queue.
    max_inflight: int = 32
    #: Reads allowed to queue for a slot; beyond this they are shed (429).
    max_waiting: int = 64
    #: Delta batches allowed in the commit queue; beyond this writes shed.
    delta_queue_limit: int = 16
    #: Default per-read deadline in seconds (504 when missed).
    default_deadline: float = 5.0
    #: ``Retry-After`` hint attached to shed responses, in seconds.
    retry_after: float = 0.5
    #: Consecutive commit failures that trip the breaker to read-only.
    breaker_threshold: int = 3
    #: Seconds the breaker stays open before admitting a half-open probe.
    breaker_cooldown: float = 5.0
    #: Artificial per-read service time, in seconds.  A fault-injection /
    #: benchmark knob (the overload schedule uses it to saturate the gate
    #: deterministically); keep 0 in production.
    read_delay: float = 0.0

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ServiceError("max_inflight must be >= 1")
        if self.max_waiting < 0:
            raise ServiceError("max_waiting must be >= 0")
        if self.delta_queue_limit < 1:
            raise ServiceError("delta_queue_limit must be >= 1")
        if self.default_deadline <= 0:
            raise ServiceError("default_deadline must be positive")
        if self.retry_after <= 0:
            raise ServiceError("retry_after must be positive")
        if self.breaker_threshold < 1:
            raise ServiceError("breaker_threshold must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ServiceError("breaker_cooldown must be positive")
        if self.read_delay < 0:
            raise ServiceError("read_delay must be >= 0")


def _latency_summary(histogram: obs_registry.Histogram) -> Dict[str, float]:
    """Count / sum / mean of one latency histogram (for the JSON document)."""
    _, total, count = histogram.value()
    return {"count": count, "sum_seconds": total,
            "mean_seconds": (total / count) if count else 0.0}


class CommitTicket:
    """Handle for one accepted delta batch: wait for its commit outcome."""

    def __init__(self):
        self._done = threading.Event()
        self.result: Optional[BatchResult] = None
        self.error: Optional[BaseException] = None

    def _complete(self, result: BatchResult) -> None:
        self.result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> BatchResult:
        """Block until the batch committed; re-raise its failure if it did
        not.  Raises :class:`~repro.exceptions.DeadlineExceededError` when
        ``timeout`` elapses first (the batch itself stays queued and will
        still commit)."""
        if not self._done.wait(timeout):
            from ..exceptions import DeadlineExceededError
            raise DeadlineExceededError(
                "batch accepted but not committed within the wait timeout")
        if self.error is not None:
            raise self.error
        return self.result


class MatchService:
    """A resilient resolution service over one stream session (module docs)."""

    def __init__(self, session=None, *,
                 session_factory: Optional[Callable[[], object]] = None,
                 config: Optional[ServiceConfig] = None,
                 clock: Clock = time.monotonic):
        if (session is None) == (session_factory is None):
            raise ServiceError(
                "pass exactly one of session= or session_factory=")
        self.config = config if config is not None else ServiceConfig()
        self._clock = clock
        self._session = session
        self._session_factory = session_factory
        self._state = STARTING
        self._state_lock = threading.Lock()
        self._startup_error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._epoch: Optional[Epoch] = None
        self.gate = AdmissionGate(self.config.max_inflight,
                                  self.config.max_waiting,
                                  retry_after=self.config.retry_after,
                                  clock=clock)
        self.breaker = CircuitBreaker(threshold=self.config.breaker_threshold,
                                      cooldown=self.config.breaker_cooldown,
                                      clock=clock)
        self._deltas: "queue.Queue" = queue.Queue(
            maxsize=self.config.delta_queue_limit)
        self._commit_thread: Optional[threading.Thread] = None
        self._startup_thread: Optional[threading.Thread] = None
        self._drain_requested = threading.Event()
        self._previous_handlers: Dict[int, object] = {}
        #: Guards the point-in-time fields snapshotted by :meth:`metrics`
        #: (started-at / epoch-published-at timestamps); individual metric
        #: updates take the per-metric registry locks instead.
        self._metrics_lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._epoch_published_at: Optional[float] = None
        #: Per-service metrics registry.  Instance-scoped so two services in
        #: one process never mix counts; the Prometheus exposition merges it
        #: with the process-wide registry (grid, kernels, WAL, ...).
        self.registry = obs_registry.MetricsRegistry()
        self._counters: Dict[str, obs_registry.Counter] = {
            key: self.registry.counter(f"service_{key}", help_text)
            for key, help_text in _COUNTER_HELP.items()
        }
        self._read_seconds = self.registry.histogram(
            "service_read_seconds", "End-to-end latency of one read request")
        self._commit_seconds = self.registry.histogram(
            "service_commit_seconds", "Commit-loop latency of one batch")
        self._uptime_gauge = self.registry.gauge(
            "service_uptime_seconds", "Seconds since the service became ready")
        self._epoch_gauge = self.registry.gauge(
            "service_epoch", "Id of the currently published epoch")
        self._epoch_age_gauge = self.registry.gauge(
            "service_epoch_age_seconds",
            "Seconds since the current epoch was published")
        self._queue_depth_gauge = self.registry.gauge(
            "service_delta_queue_depth", "Delta batches waiting to commit")

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def recover(cls, directory, config: Optional[ServiceConfig] = None,
                clock: Clock = time.monotonic, **recover_kwargs) -> "MatchService":
        """A service whose startup is crash recovery from ``directory``.

        The heavy work (checkpoint load + WAL tail replay) runs inside
        :meth:`start` / :meth:`start_background`, so an HTTP frontend can
        already answer ``/ready`` (503) while recovery is in progress.
        Recovery failures surface as the typed
        :class:`~repro.exceptions.RecoveryError` from :meth:`start`.
        """
        from ..durability import DurableStreamSession

        def factory():
            return DurableStreamSession.recover(directory, **recover_kwargs)

        return cls(session_factory=factory, config=config, clock=clock)

    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    @property
    def ready(self) -> bool:
        return self.state == READY

    @property
    def read_only(self) -> bool:
        """Degraded mode: the commit breaker is not closed."""
        from .breaker import CLOSED
        return self.breaker.state != CLOSED

    @property
    def session(self):
        return self._session

    def start(self) -> "MatchService":
        """Run startup synchronously: build/recover the session, publish the
        first epoch, start the commit loop, flip to ready."""
        try:
            if self._session is None:
                self._session = self._session_factory()
            if not self._session.started:
                self._session.start()
            self._publish_epoch()
        except BaseException as error:
            with self._state_lock:
                self._state = FAILED
                self._startup_error = error
            raise
        self._commit_thread = threading.Thread(
            target=self._commit_loop, name="match-service-commit", daemon=True)
        self._commit_thread.start()
        with self._metrics_lock:
            self._started_at = self._clock()
        with self._state_lock:
            self._state = READY
        self._ready.set()
        return self

    def start_background(self) -> threading.Thread:
        """Run :meth:`start` in a thread; readiness stays gated meanwhile.

        A startup failure is recorded (``state == "failed"``,
        :attr:`startup_error`) instead of raised — poll :attr:`state` or
        :meth:`wait_ready`.
        """
        def runner():
            try:
                self.start()
            except BaseException:
                pass  # recorded by start()

        self._startup_thread = threading.Thread(
            target=runner, name="match-service-startup", daemon=True)
        self._startup_thread.start()
        return self._startup_thread

    @property
    def startup_error(self) -> Optional[BaseException]:
        return self._startup_error

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until ready (True) or startup failed / timed out (False)."""
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            if self.ready:
                return True
            if self.state == FAILED:
                return False
            remaining = None if deadline is None \
                else deadline - self._clock()
            if remaining is not None and remaining <= 0:
                return False
            if self._ready.wait(0.01 if remaining is None
                                else min(0.01, remaining)):
                return True

    # ----------------------------------------------------------- signals
    def install_signal_handlers(self) -> bool:
        """SIGTERM/SIGINT → request a drain (handled by the serve loop).

        The handler only sets a flag; the actual drain (finish in-flight
        batch, final checkpoint, stop) runs on whichever thread waits in
        :meth:`wait_for_drain_request` / calls :meth:`drain`.  Returns
        ``False`` outside the main thread (CPython delivers signals there).
        """
        try:
            self._previous_handlers = {
                signal.SIGTERM: signal.signal(signal.SIGTERM, self._on_signal),
                signal.SIGINT: signal.signal(signal.SIGINT, self._on_signal),
            }
        except ValueError:
            self._previous_handlers = {}
            return False
        return True

    def uninstall_signal_handlers(self) -> None:
        for signum, handler in self._previous_handlers.items():
            signal.signal(signum, handler)
        self._previous_handlers = {}

    def _on_signal(self, signum, frame) -> None:
        self._drain_requested.set()

    def request_drain(self) -> None:
        self._drain_requested.set()

    def wait_for_drain_request(self, timeout: Optional[float] = None) -> bool:
        return self._drain_requested.wait(timeout)

    # -------------------------------------------------------------- reads
    def _pin_epoch(self) -> Epoch:
        epoch = self._epoch  # single atomic reference read
        if epoch is None:
            raise ServiceUnavailableError(
                f"service is {self.state}: no epoch published yet",
                retry_after=self.config.retry_after)
        return epoch

    def read(self, fn: Callable[[Epoch], object],
             deadline_seconds: Optional[float] = None):
        """Run one read against a pinned epoch under full admission control.

        ``fn`` receives the pinned :class:`Epoch` and must not touch the
        session — the epoch is the entire read surface.
        """
        if self.state == STOPPED:
            raise ServiceUnavailableError("service is stopped",
                                          retry_after=self.config.retry_after)
        deadline = Deadline(deadline_seconds
                            if deadline_seconds is not None
                            else self.config.default_deadline,
                            clock=self._clock)
        self._count("reads_total")
        started = time.perf_counter()
        with span("serve.read"):
            try:
                self.gate.acquire(deadline)
            except ServiceError:
                self._count("reads_failed")
                self._read_seconds.observe(time.perf_counter() - started)
                raise
            try:
                epoch = self._pin_epoch()
                if self.config.read_delay:
                    time.sleep(self.config.read_delay)
                result = fn(epoch)
                deadline.check("read")
            except Exception:
                self._count("reads_failed")
                raise
            else:
                self._count("reads_ok")
                return result
            finally:
                self.gate.release()
                self._read_seconds.observe(time.perf_counter() - started)

    def resolve(self, entity_id: str,
                deadline_seconds: Optional[float] = None) -> Dict:
        def run(epoch: Epoch) -> Dict:
            return {"entity": entity_id,
                    "canonical": epoch.resolve(entity_id),
                    "epoch": epoch.epoch_id}
        return self.read(run, deadline_seconds)

    def cluster(self, entity_id: str,
                deadline_seconds: Optional[float] = None) -> Dict:
        def run(epoch: Epoch) -> Dict:
            return {"entity": entity_id,
                    "members": list(epoch.cluster(entity_id)),
                    "epoch": epoch.epoch_id}
        return self.read(run, deadline_seconds)

    def same(self, first: str, second: str,
             deadline_seconds: Optional[float] = None) -> Dict:
        def run(epoch: Epoch) -> Dict:
            return {"a": first, "b": second,
                    "same": epoch.same(first, second),
                    "epoch": epoch.epoch_id}
        return self.read(run, deadline_seconds)

    def current_epoch(self) -> Optional[Epoch]:
        """The published epoch, without admission control (internal/tests)."""
        return self._epoch

    # -------------------------------------------------------------- writes
    def submit_deltas(self, batch: ChangeBatch) -> CommitTicket:
        """Enqueue one batch for the single-writer commit loop.

        Raises the typed refusals instead of queueing unboundedly:
        :class:`ServiceUnavailableError` before ready / while draining,
        :class:`ServiceReadOnlyError` while the breaker is open, and
        :class:`ServiceOverloadedError` when the commit queue is full.
        The returned :class:`CommitTicket` resolves when the batch commits
        (a new epoch is then already published) or fails.
        """
        state = self.state
        if state != READY:
            raise ServiceUnavailableError(
                f"service is {state}: not accepting deltas",
                retry_after=self.config.retry_after)
        if not self.breaker.allows_writes():
            self._count("deltas_rejected_read_only")
            raise ServiceReadOnlyError(
                "service is in read-only mode (commit circuit breaker "
                f"open, state={self.breaker.state})",
                retry_after=max(self.breaker.retry_after(),
                                self.config.retry_after))
        ticket = CommitTicket()
        try:
            self._deltas.put_nowait((ticket, batch))
        except queue.Full:
            self._count("deltas_shed")
            raise ServiceOverloadedError(
                f"commit queue full ({self.config.delta_queue_limit} "
                "batches pending)",
                retry_after=self.config.retry_after) from None
        self._count("deltas_accepted")
        return ticket

    def apply_deltas(self, batch: ChangeBatch,
                     timeout: Optional[float] = None) -> BatchResult:
        """Submit one batch and wait for its commit (convenience wrapper)."""
        return self.submit_deltas(batch).wait(timeout)

    # --------------------------------------------------------- commit loop
    def _commit_loop(self) -> None:
        while True:
            item = self._deltas.get()
            if item is _STOP:
                return
            ticket, batch = item
            if not self.breaker.admit():
                # Raced into an open breaker after enqueue: refuse late
                # rather than burn the probe budget out of order.
                ticket._fail(ServiceReadOnlyError(
                    "commit refused: circuit breaker opened while the "
                    "batch was queued",
                    retry_after=self.breaker.retry_after()))
                continue
            try:
                # Client errors are rejected *before* anything mutates —
                # the session never partially applies a bad batch.
                self._validate_batch(batch)
            except (DeltaError, DataModelError) as error:
                self._count("deltas_invalid")
                self.breaker.release_probe()
                ticket._fail(error)
                continue
            commit_started = time.perf_counter()
            try:
                with span("serve.commit", ops=len(batch)):
                    result = self._session.apply(batch)
            except BaseException as error:
                # A batch that passed validation and still failed means the
                # substrate (pool, WAL, matcher) is suspect: charge the
                # breaker — repeated failures walk the degradation ladder
                # down to read-only instead of killing the service.
                # (TaskFailedError and DurabilityError are the designed
                # cases; anything else is treated just as conservatively.)
                self._count("commit_failures")
                self.breaker.record_failure()
                self._commit_seconds.observe(time.perf_counter() - commit_started)
                ticket._fail(error)
            else:
                self._count("commits_total")
                self.breaker.record_success()
                self._publish_epoch()
                self._commit_seconds.observe(time.perf_counter() - commit_started)
                ticket._complete(result)

    def _validate_batch(self, batch: ChangeBatch) -> None:
        """Reject a batch that would fail semantically, without mutating.

        Simulates entity presence across the batch (adds/removes earlier in
        the same batch count) and checks relation names, covering every
        client-error path of :meth:`StreamSession.apply`: duplicate
        ``add_entity``, unknown entity in ``update``/``remove``/
        ``upsert_similarity``/``add_evidence``, unknown relation in tuple
        deltas.
        """
        from ..streaming.deltas import (AddEntity, AddEvidence, AddTuple,
                                        RemoveEntity, RemoveTuple,
                                        UpdateEntity, UpsertSimilarity)
        store = self._inner_session().overlay
        added: set = set()
        removed: set = set()

        def present(entity_id: str) -> bool:
            if entity_id in added:
                return True
            if entity_id in removed:
                return False
            return store.has_entity(entity_id)

        for delta in batch:
            if isinstance(delta, AddEntity):
                entity_id = delta.entity.entity_id
                if present(entity_id):
                    raise DeltaError(
                        f"add_entity: id already present: {entity_id!r}")
                added.add(entity_id)
                removed.discard(entity_id)
            elif isinstance(delta, UpdateEntity):
                entity_id = delta.entity.entity_id
                if not present(entity_id):
                    raise DeltaError(
                        f"update_entity: unknown entity {entity_id!r}")
            elif isinstance(delta, RemoveEntity):
                if not present(delta.entity_id):
                    raise DeltaError(
                        f"remove_entity: unknown entity {delta.entity_id!r}")
                removed.add(delta.entity_id)
                added.discard(delta.entity_id)
            elif isinstance(delta, (AddTuple, RemoveTuple)):
                if not store.has_relation(delta.relation):
                    raise DeltaError(
                        f"{delta.op}: unknown relation {delta.relation!r}")
            elif isinstance(delta, UpsertSimilarity):
                for entity_id in delta.pair:
                    if not present(entity_id):
                        raise DeltaError(
                            f"upsert_similarity: unknown entity "
                            f"{entity_id!r}")
            elif isinstance(delta, AddEvidence):
                for entity_id in delta.pair:
                    if not present(entity_id):
                        raise DeltaError(
                            f"evidence references unknown entity "
                            f"{entity_id!r}")

    def _publish_epoch(self) -> None:
        session = self._inner_session()
        epoch = Epoch(self._session.batches_applied,
                      self._session.matches,
                      session.overlay.entity_ids())
        self._epoch = epoch  # the atomic swap: readers pin old or new, never both
        with self._metrics_lock:
            self._epoch_published_at = self._clock()
        self._count("epochs_published")

    def _inner_session(self):
        """The raw StreamSession under an optional durable wrapper."""
        return getattr(self._session, "session", self._session)

    # --------------------------------------------------------------- drain
    def drain(self, checkpoint: bool = True) -> None:
        """Finish every accepted batch, checkpoint, stop (idempotent).

        New deltas are refused as soon as draining starts; batches already
        accepted (their tickets are outstanding promises) are committed
        first because the stop sentinel queues FIFO behind them.  Durable
        sessions then write a final checkpoint, so a subsequent
        :meth:`recover` starts from it instead of a WAL replay.
        """
        with self._state_lock:
            if self._state in (STOPPED, FAILED):
                return
            was_ready = self._state == READY
            self._state = DRAINING
        if was_ready and self._commit_thread is not None:
            self._deltas.put(_STOP)
            self._commit_thread.join()
            self._commit_thread = None
        if self._session is not None and hasattr(self._session, "close"):
            # DurableStreamSession: final checkpoint + WAL release.
            self._session.close(checkpoint=checkpoint
                                and self._session.started)
        self.uninstall_signal_handlers()
        with self._state_lock:
            self._state = STOPPED

    # ------------------------------------------------------------- metrics
    def _count(self, key: str) -> None:
        self._counters[key].inc()

    def _observe_gauges(self):
        """Refresh the point-in-time gauges ahead of a registry snapshot.

        The timestamp fields are read together under ``_metrics_lock`` (one
        consistent cut); the gauge writes and the later formatting happen
        outside it.  Returns ``(uptime, epoch age)`` in seconds.
        """
        now = self._clock()
        with self._metrics_lock:
            started_at = self._started_at
            published_at = self._epoch_published_at
        epoch = self._epoch
        uptime = None if started_at is None else max(0.0, now - started_at)
        epoch_age = None if published_at is None \
            else max(0.0, now - published_at)
        if uptime is not None:
            self._uptime_gauge.set(uptime)
        if epoch is not None:
            self._epoch_gauge.set(float(epoch.epoch_id))
        if epoch_age is not None:
            self._epoch_age_gauge.set(epoch_age)
        self._queue_depth_gauge.set(float(self._deltas.qsize()))
        return uptime, epoch_age

    def metrics(self) -> Dict:
        """One JSON-compatible snapshot of every operational counter."""
        uptime, epoch_age = self._observe_gauges()
        counters = {key: int(handle.value())
                    for key, handle in self._counters.items()}
        epoch = self._epoch
        session = self._session
        supervision = None
        kernels = None
        if session is not None:
            inner = self._inner_session()
            history = getattr(inner, "supervision", None)
            if history is not None:
                supervision = history.snapshot()
            kernel_work = getattr(inner, "kernel_counters", None)
            if kernel_work is not None:
                from ..kernels.backend import backend
                kernels = dict(kernel_work.as_dict(), backend=backend())
        return {
            "state": self.state,
            "mode": "read-only" if self.read_only else "read-write",
            "epoch": None if epoch is None else epoch.epoch_id,
            "epoch_age_seconds": epoch_age,
            "uptime_seconds": uptime,
            "matches": None if epoch is None else len(epoch.matches),
            "entities": None if epoch is None else len(epoch.entity_ids),
            "counters": counters,
            "admission": self.gate.stats(),
            "breaker": self.breaker.stats(),
            "delta_queue_depth": self._deltas.qsize(),
            "delta_queue_limit": self.config.delta_queue_limit,
            "supervision": supervision,
            "kernels": kernels,
            "latency": {
                "read": _latency_summary(self._read_seconds),
                "commit": _latency_summary(self._commit_seconds),
            },
        }

    def prometheus_metrics(self) -> str:
        """Prometheus text exposition (0.0.4): this service's registry
        merged with the process-wide one (grid, kernels, WAL, caches)."""
        self._observe_gauges()
        return render_prometheus(self.registry.snapshot(),
                                 obs_registry.registry().snapshot())

    def health(self) -> Dict:
        """Liveness document (always served, even degraded or draining)."""
        epoch = self._epoch
        return {
            "status": "ok" if self.state in (READY, STARTING, DRAINING)
            else "failed",
            "state": self.state,
            "mode": "read-only" if self.read_only else "read-write",
            "breaker": self.breaker.state,
            "epoch": None if epoch is None else epoch.epoch_id,
        }
