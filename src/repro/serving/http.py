"""Stdlib HTTP frontend for :class:`~repro.serving.service.MatchService`.

A thin translation layer over :class:`http.server.ThreadingHTTPServer` —
every request handler thread delegates to the service, which owns all of
the robustness machinery (epoch pinning, admission, deadlines, breaker).

Routes::

    GET  /resolve/<entity-id>      canonical representative of the entity
    GET  /cluster/<entity-id>      all members of the entity's cluster
    GET  /same?a=<id>&b=<id>       pairwise same-entity check
    POST /deltas                   submit a change batch (JSON wire format)
    GET  /health                   liveness + mode (always answers)
    GET  /ready                    readiness (503 until recovery completes)
    GET  /metrics                  operational counters; JSON by default,
                                   Prometheus text format 0.0.4 when the
                                   ``Accept`` header asks for ``text/plain``
                                   or ``application/openmetrics-text``

Typed service failures map to distinct statuses: 429 + ``Retry-After``
(shed), 504 (deadline), 503 + ``Retry-After`` (not ready / draining /
read-only), 404 (unknown entity), 400 (malformed request or batch).
Every response carries the answering epoch where applicable, so clients
can correlate reads with committed batches.

``POST /deltas`` body: ``{"ops": [<delta records>], "wait": true}`` using
the :func:`repro.streaming.deltas.op_from_dict` wire format.  With
``wait`` (the default) the response reports the commit; with
``"wait": false`` the batch is acknowledged with 202 as soon as it is
accepted into the bounded commit queue.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..exceptions import (
    DataModelError,
    DeadlineExceededError,
    DeltaError,
    ServiceOverloadedError,
    ServiceReadOnlyError,
    ServiceUnavailableError,
    UnknownEntityError,
)
from ..obs.exposition import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..streaming.deltas import ChangeBatch, op_from_dict
from .service import MatchService

#: Upper bound on an accepted ``POST /deltas`` body, in bytes.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request; the owning server carries the service reference."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MatchService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics endpoint's job

    # ----------------------------------------------------------- responses
    def _send_json(self, status: int, payload: dict,
                   retry_after: Optional[float] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(retry_after, 0.0):.3f}")
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str,
                    retry_after: Optional[float] = None) -> None:
        self._send_json(status, {"error": message}, retry_after=retry_after)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _wants_prometheus(self) -> bool:
        """Content negotiation for ``/metrics``: JSON unless the client's
        ``Accept`` header asks for a text (Prometheus/OpenMetrics) scrape."""
        accept = self.headers.get("Accept", "")
        for clause in accept.split(","):
            media = clause.split(";", 1)[0].strip().lower()
            if media in ("text/plain", "application/openmetrics-text"):
                return True
            if media == "application/json":
                return False
        return False

    def _deadline(self) -> Optional[float]:
        """Per-request deadline from the ``X-Deadline`` header (seconds)."""
        raw = self.headers.get("X-Deadline")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise DeltaError(f"X-Deadline is not a number: {raw!r}")
        if value <= 0:
            raise DeltaError("X-Deadline must be positive")
        return value

    def _guarded(self, fn) -> None:
        """Run a route, translating typed failures into status codes."""
        try:
            fn()
        except ServiceOverloadedError as error:
            self._send_error(429, str(error), retry_after=error.retry_after)
        except DeadlineExceededError as error:
            self._send_error(504, str(error))
        except ServiceReadOnlyError as error:
            self._send_error(503, str(error), retry_after=error.retry_after)
        except ServiceUnavailableError as error:
            self._send_error(503, str(error), retry_after=error.retry_after)
        except UnknownEntityError as error:
            self._send_error(404, str(error))
        except (DeltaError, DataModelError) as error:
            self._send_error(400, str(error))
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as error:  # pragma: no cover - last-resort 500
            self._send_error(500, f"internal error: {error!r}")

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:
        self._guarded(self._route_get)

    def do_POST(self) -> None:
        self._guarded(self._route_post)

    def _route_get(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = urllib.parse.parse_qs(parsed.query)
        if parts == ["health"]:
            self._send_json(200, self.service.health())
        elif parts == ["ready"]:
            if self.service.ready:
                self._send_json(200, {"ready": True})
            else:
                self._send_json(503, {"ready": False,
                                      "state": self.service.state},
                                retry_after=self.service.config.retry_after)
        elif parts == ["metrics"]:
            if self._wants_prometheus():
                self._send_text(200, self.service.prometheus_metrics(),
                                PROMETHEUS_CONTENT_TYPE)
            else:
                self._send_json(200, self.service.metrics())
        elif len(parts) == 2 and parts[0] == "resolve":
            entity_id = urllib.parse.unquote(parts[1])
            self._send_json(200, self.service.resolve(
                entity_id, deadline_seconds=self._deadline()))
        elif len(parts) == 2 and parts[0] == "cluster":
            entity_id = urllib.parse.unquote(parts[1])
            self._send_json(200, self.service.cluster(
                entity_id, deadline_seconds=self._deadline()))
        elif parts == ["same"]:
            first = query.get("a", [None])[0]
            second = query.get("b", [None])[0]
            if first is None or second is None:
                raise DeltaError("same requires query parameters a= and b=")
            self._send_json(200, self.service.same(
                first, second, deadline_seconds=self._deadline()))
        else:
            self._send_error(404, f"no such route: {parsed.path}")

    def _route_post(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path.rstrip("/") != "/deltas":
            self._send_error(404, f"no such route: {parsed.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise DeltaError("Content-Length is not a number")
        if length <= 0:
            raise DeltaError("POST /deltas requires a JSON body")
        if length > MAX_BODY_BYTES:
            raise ServiceOverloadedError(
                f"request body too large ({length} bytes, "
                f"limit {MAX_BODY_BYTES})",
                retry_after=self.service.config.retry_after)
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise DeltaError(f"body is not valid JSON: {error}")
        if not isinstance(document, dict) or "ops" not in document:
            raise DeltaError('body must be {"ops": [<delta records>], ...}')
        ops = document["ops"]
        if not isinstance(ops, list) or not ops:
            raise DeltaError("ops must be a non-empty list of delta records")
        batch = ChangeBatch([op_from_dict(record) for record in ops])
        ticket = self.service.submit_deltas(batch)
        if document.get("wait", True):
            deadline = self._deadline()
            result = ticket.wait(deadline
                                 if deadline is not None
                                 else self.service.config.default_deadline)
            self._send_json(200, {
                "batch": result.batch_index,
                "ops": result.ops,
                "matches": len(result.matches),
                "added": len(result.added),
                "retracted": len(result.retracted),
                "epoch": result.batch_index,
            })
        else:
            self._send_json(202, {"accepted": True,
                                  "queued": self.service.metrics()
                                  ["delta_queue_depth"]})


class MatchServingHTTPServer:
    """Lifecycle wrapper: a threading HTTP server bound to one service."""

    def __init__(self, service: MatchService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MatchServingHTTPServer":
        """Serve in a background thread (the caller's thread stays free for
        the service lifecycle — startup, drain waits, signals)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="match-serving-http",
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MatchServingHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
