"""Rule representation for the Dedupalog-style RULES matcher.

The paper's second matcher (Appendix B/C) is based on the declarative
Dedupalog framework of Arasu, Ré and Suciu: users state hard and soft rules in
a datalog-like language, the engine instantiates the ``equals`` predicate so
that no hard rule is violated and the number of violated soft rules is
minimised, and the result is transitively closed.

This module defines the rule classes for the fragment the paper uses:

* :class:`HardEqualityRule` — ``equals(x, y) <= SomePredicate(x, y)`` (hard):
  an externally supplied equality (e.g. a curated mapping) that must hold.
* :class:`SoftSimilarityRule` — the paper's family of soft positive rules:
  a pair with discretised similarity level ``level`` is matched when it has at
  least ``min_coauthor_support`` *distinct* pairs of already-matched
  (or identical) coauthors.  The Appendix-B program is exactly the three
  instances ``(level=3, support=0)``, ``(level=2, support=1)`` and
  ``(level=1, support=2)``.
* :class:`SoftNegativeRule` — a soft rule voting *against* matching a pair
  (e.g. "authors without any shared coauthor are unlikely to be equal").
  Negative soft rules are resolved by correlation clustering.

The positive fragment without negative rules is monotone (Proposition 5),
which is what the framework's soundness guarantee needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..exceptions import RuleParseError


@dataclass(frozen=True)
class HardEqualityRule:
    """``equals(x, y) <= source_relation(x, y)`` as a hard constraint."""

    name: str
    source_relation: str

    def __post_init__(self) -> None:
        if not self.source_relation:
            raise ValueError("source_relation must be a non-empty relation name")


@dataclass(frozen=True)
class SoftSimilarityRule:
    """Soft positive rule parameterised by similarity level and coauthor support.

    ``equals(e1, e2)`` is derived when ``similar(e1, e2, level)`` holds and at
    least ``min_coauthor_support`` distinct pairs ``(c1, c2)`` of coauthors of
    ``e1`` and ``e2`` are already known equal (either matched or the same
    entity).
    """

    name: str
    level: int
    min_coauthor_support: int = 0

    def __post_init__(self) -> None:
        if self.level not in (1, 2, 3):
            raise ValueError(f"similarity level must be in {{1,2,3}}, got {self.level}")
        if self.min_coauthor_support < 0:
            raise ValueError("min_coauthor_support must be >= 0")


@dataclass(frozen=True)
class SoftNegativeRule:
    """Soft rule voting against a match.

    ``kind`` selects the built-in condition:

    * ``"no_shared_coauthor"`` — penalise matching a pair with no matched or
      shared coauthor (the example negative rule from Appendix A),
    * ``"low_similarity"`` — penalise matching a pair whose similarity level is
      below ``threshold_level``.

    ``weight`` is the cost of violating the rule, used by the correlation
    clustering objective.
    """

    name: str
    kind: str = "no_shared_coauthor"
    threshold_level: int = 1
    weight: float = 1.0

    _KINDS = ("no_shared_coauthor", "low_similarity")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown negative-rule kind {self.kind!r}; known: {self._KINDS}")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class DedupalogProgram:
    """A complete RULES program: hard rules, soft rules, negative rules."""

    hard_rules: List[HardEqualityRule] = field(default_factory=list)
    soft_rules: List[SoftSimilarityRule] = field(default_factory=list)
    negative_rules: List[SoftNegativeRule] = field(default_factory=list)
    transitive_closure: bool = True

    def validate(self) -> None:
        """Check that rule names are unique across the program."""
        names = ([r.name for r in self.hard_rules]
                 + [r.name for r in self.soft_rules]
                 + [r.name for r in self.negative_rules])
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise RuleParseError(f"duplicate rule names in program: {sorted(duplicates)}")

    def is_monotone(self) -> bool:
        """Whether the program lies in the monotone fragment (Proposition 5).

        Negative rules and the transitive-closure *constraint* are the two
        features that can break monotonicity; taking the transitive closure
        *after* matching (the way the engine applies it) preserves it.
        """
        return not self.negative_rules

    def rule_names(self) -> List[str]:
        return ([r.name for r in self.hard_rules]
                + [r.name for r in self.soft_rules]
                + [r.name for r in self.negative_rules])


def paper_rules_program() -> DedupalogProgram:
    """The Appendix-B RULES program.

    * similarity 3 ⇒ match outright,
    * similarity 2 ⇒ match with at least one matching coauthor pair,
    * similarity 1 ⇒ match with at least two distinct matching coauthor pairs,
    * transitive closure applied at the end.
    """
    program = DedupalogProgram(
        soft_rules=[
            SoftSimilarityRule("similar3", level=3, min_coauthor_support=0),
            SoftSimilarityRule("similar2_coauthor", level=2, min_coauthor_support=1),
            SoftSimilarityRule("similar1_two_coauthors", level=1, min_coauthor_support=2),
        ],
        transitive_closure=True,
    )
    program.validate()
    return program
