"""A small parser for the textual form of RULES programs.

The supported syntax is a pragmatic subset of Dedupalog sufficient for the
rules used in the paper.  One rule per line; ``%`` starts a comment.

Hard rules::

    equals(x, y) <= AuthorEQ(x, y).            % hard external equality

Soft positive rules (the similarity/coauthor family)::

    equals(x, y) <- similar(x, y, 3).
    equals(x, y) <- similar(x, y, 2), coauthor(x, c1), coauthor(y, c2), equals(c1, c2).
    equals(x, y) <- similar(x, y, 1), coauthor(x, c1), coauthor(y, c2), equals(c1, c2),
                    coauthor(x, c3), coauthor(y, c4), equals(c3, c4).

The number of ``equals`` atoms in the body becomes the coauthor-support
requirement (distinctness between support pairs is implicit, as in the
paper's rule 3).

Soft negative rules::

    !equals(x, y) <- no_shared_coauthor(x, y).
    !equals(x, y) <- low_similarity(x, y, 1).

``<=`` marks hard rules, ``<-`` soft rules, a leading ``!`` marks negative
rules.  Whitespace and the trailing period are optional.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..exceptions import RuleParseError
from .ast import DedupalogProgram, HardEqualityRule, SoftNegativeRule, SoftSimilarityRule

_ATOM_PATTERN = re.compile(r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(?P<args>[^)]*)\)")
_SIMILAR_LEVEL_PATTERN = re.compile(r"similar\s*\([^,]+,[^,]+,\s*(?P<level>[123])\s*\)")


def _strip_comment(line: str) -> str:
    position = line.find("%")
    return line if position < 0 else line[:position]


def _split_head_body(line: str) -> Tuple[str, str, str]:
    """Return (head, operator, body) where operator is '<=' or '<-'."""
    for operator in ("<=", "<-"):
        if operator in line:
            head, body = line.split(operator, 1)
            return head.strip(), operator, body.strip().rstrip(".").strip()
    raise RuleParseError(f"rule line has no '<=' or '<-' operator: {line!r}")


def parse_rule_line(line: str, index: int) -> Optional[object]:
    """Parse one rule line into a rule object, or ``None`` for blank lines."""
    stripped = _strip_comment(line).strip()
    if not stripped:
        return None
    head, operator, body = _split_head_body(stripped)

    negative = head.startswith("!")
    head_name_match = _ATOM_PATTERN.match(head.lstrip("!").strip())
    if head_name_match is None or head_name_match.group("name") != "equals":
        raise RuleParseError(f"rule {index}: head must be an equals(...) atom, got {head!r}")

    body_atoms = _ATOM_PATTERN.findall(body)
    if not body_atoms:
        raise RuleParseError(f"rule {index}: empty body in {line!r}")
    body_predicates = [name for name, _ in body_atoms]

    if negative:
        if body_predicates[0] == "no_shared_coauthor":
            return SoftNegativeRule(f"neg_{index}", kind="no_shared_coauthor")
        if body_predicates[0] == "low_similarity":
            level_match = re.search(r",\s*([123])\s*\)", body)
            level = int(level_match.group(1)) if level_match else 1
            return SoftNegativeRule(f"neg_{index}", kind="low_similarity",
                                    threshold_level=level)
        raise RuleParseError(
            f"rule {index}: unsupported negative-rule body predicate {body_predicates[0]!r}"
        )

    if operator == "<=":
        # Hard rule: a single non-equals body predicate naming an external relation.
        external = [name for name in body_predicates if name != "equals"]
        if len(external) != 1:
            raise RuleParseError(
                f"rule {index}: hard rules must have exactly one external body atom"
            )
        return HardEqualityRule(f"hard_{index}", source_relation=external[0])

    # Soft positive rule: similarity level + number of equals support atoms.
    level_match = _SIMILAR_LEVEL_PATTERN.search(body)
    if level_match is None:
        raise RuleParseError(
            f"rule {index}: soft rules must contain a similar(x, y, level) atom"
        )
    level = int(level_match.group("level"))
    support = sum(1 for name in body_predicates if name == "equals")
    return SoftSimilarityRule(f"soft_{index}", level=level, min_coauthor_support=support)


def parse_program(text: str, transitive_closure: bool = True) -> DedupalogProgram:
    """Parse a multi-line RULES program into a :class:`DedupalogProgram`."""
    program = DedupalogProgram(transitive_closure=transitive_closure)
    for index, line in enumerate(text.splitlines(), start=1):
        rule = parse_rule_line(line, index)
        if rule is None:
            continue
        if isinstance(rule, HardEqualityRule):
            program.hard_rules.append(rule)
        elif isinstance(rule, SoftSimilarityRule):
            program.soft_rules.append(rule)
        elif isinstance(rule, SoftNegativeRule):
            program.negative_rules.append(rule)
    program.validate()
    return program


#: The Appendix-B program in textual form (equivalent to
#: :func:`repro.dedupalog.ast.paper_rules_program`).
PAPER_RULES_TEXT = """
% Appendix B, RULES matcher
equals(e1, e2) <- similar(e1, e2, 3).
equals(e1, e2) <- similar(e1, e2, 2), coauthor(e1, c1), coauthor(e2, c2), equals(c1, c2).
equals(e1, e2) <- similar(e1, e2, 1), coauthor(e1, c1), coauthor(e2, c2), equals(c1, c2), coauthor(e1, c3), coauthor(e2, c4), equals(c3, c4).
"""
