"""Correlation clustering for soft negative rules.

When a RULES program contains soft negative rules, the derived positive
matches and the negative votes may conflict; Dedupalog resolves the conflict
by clustering the entities so that the total weight of violated soft rules is
(approximately) minimised.  The classic pivot algorithm of Ailon, Charikar and
Newman gives a 3-approximation in expectation and runs in linear time in the
number of edges — this is the "3-approximate algorithm in [2]" the paper
mentions in Appendix B.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from ..datamodel import EntityPair


def pivot_correlation_clustering(nodes: Iterable[str],
                                 positive_edges: Iterable[EntityPair],
                                 negative_edges: Iterable[EntityPair] = (),
                                 seed: int = 0) -> List[FrozenSet[str]]:
    """Cluster ``nodes`` with the random-pivot 3-approximation.

    ``positive_edges`` pull their endpoints into the same cluster,
    ``negative_edges`` push them apart; edges absent from both sets are
    treated as (weak) negative, the standard correlation-clustering
    convention on sparse graphs.

    The algorithm repeatedly picks a random unclustered pivot and forms a
    cluster from the pivot and its unclustered positive neighbours that are
    not negatively connected to it.
    """
    rng = random.Random(seed)
    negative = set(negative_edges)
    adjacency: Dict[str, Set[str]] = {}
    node_list = sorted(set(nodes))
    for node in node_list:
        adjacency.setdefault(node, set())
    for pair in positive_edges:
        if pair in negative:
            continue
        adjacency.setdefault(pair.first, set()).add(pair.second)
        adjacency.setdefault(pair.second, set()).add(pair.first)
        if pair.first not in node_list:
            node_list.append(pair.first)
        if pair.second not in node_list:
            node_list.append(pair.second)

    unclustered = set(adjacency)
    order = sorted(unclustered)
    rng.shuffle(order)
    clusters: List[FrozenSet[str]] = []
    for pivot in order:
        if pivot not in unclustered:
            continue
        cluster = {pivot}
        for neighbor in adjacency[pivot]:
            if neighbor in unclustered and EntityPair.of(pivot, neighbor) not in negative:
                cluster.add(neighbor)
        unclustered -= cluster
        clusters.append(frozenset(cluster))
    return clusters


def clustering_cost(clusters: Sequence[FrozenSet[str]],
                    positive_edges: Iterable[EntityPair],
                    negative_edges: Iterable[EntityPair],
                    positive_weight: float = 1.0,
                    negative_weight: float = 1.0) -> float:
    """Correlation-clustering objective: weight of disagreeing edges.

    A positive edge across two clusters and a negative edge inside one cluster
    each count as a disagreement.
    """
    membership: Dict[str, int] = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            membership[node] = index
    cost = 0.0
    for pair in positive_edges:
        if membership.get(pair.first) != membership.get(pair.second):
            cost += positive_weight
    for pair in negative_edges:
        first = membership.get(pair.first)
        second = membership.get(pair.second)
        if first is not None and first == second:
            cost += negative_weight
    return cost


def clusters_to_matches(clusters: Sequence[FrozenSet[str]]) -> FrozenSet[EntityPair]:
    """All intra-cluster pairs — the transitively-closed match set of a clustering."""
    matches: Set[EntityPair] = set()
    for cluster in clusters:
        members = sorted(cluster)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                matches.add(EntityPair(first, second))
    return frozenset(matches)
