"""Dedupalog-style declarative rule engine used by the RULES matcher."""

from .ast import (
    DedupalogProgram,
    HardEqualityRule,
    SoftNegativeRule,
    SoftSimilarityRule,
    paper_rules_program,
)
from .clustering import clustering_cost, clusters_to_matches, pivot_correlation_clustering
from .engine import DedupalogEngine
from .parser import PAPER_RULES_TEXT, parse_program, parse_rule_line

__all__ = [
    "DedupalogEngine",
    "DedupalogProgram",
    "HardEqualityRule",
    "PAPER_RULES_TEXT",
    "SoftNegativeRule",
    "SoftSimilarityRule",
    "clustering_cost",
    "clusters_to_matches",
    "parse_program",
    "parse_rule_line",
    "paper_rules_program",
    "pivot_correlation_clustering",
]
