"""Evaluation engine for RULES programs.

The engine evaluates a :class:`~repro.dedupalog.ast.DedupalogProgram` over an
:class:`~repro.datamodel.store.EntityStore`:

1. **Hard rules** seed the match set from external equality relations.
2. **Soft positive rules** are applied iteratively to a least fixpoint: a
   candidate pair is added as soon as some rule's similarity level and
   coauthor-support requirement are met.  Because rules only *add* matches,
   the fixpoint is unique and the evaluation is monotone in both the entity
   set and the positive evidence (Proposition 5).
3. **Soft negative rules**, when present, are reconciled with the positive
   matches by pivot correlation clustering (3-approximation).
4. **Transitive closure** is applied at the end when the program requests it;
   Appendix A notes this preserves monotonicity.

Negative evidence pairs are never matched and are excluded from the closure's
input edges (they may still end up implied by the closure of other matches,
in which case they are dropped again — negative evidence is authoritative).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datamodel import COAUTHOR, EntityPair, EntityStore, MatchSet
from .ast import DedupalogProgram, HardEqualityRule, SoftNegativeRule, SoftSimilarityRule
from .clustering import clusters_to_matches, pivot_correlation_clustering


class DedupalogEngine:
    """Evaluates a RULES program against an entity store."""

    def __init__(self, program: DedupalogProgram, coauthor_relation: str = COAUTHOR,
                 clustering_seed: int = 0):
        program.validate()
        self.program = program
        self.coauthor_relation = coauthor_relation
        self.clustering_seed = clustering_seed

    # ------------------------------------------------------------------ api
    def evaluate(self, store: EntityStore,
                 positive: Iterable[EntityPair] = (),
                 negative: Iterable[EntityPair] = ()) -> FrozenSet[EntityPair]:
        """Run the program and return the derived match set."""
        positive_set = frozenset(positive)
        negative_set = frozenset(negative) - positive_set

        matches: Set[EntityPair] = set(p for p in positive_set if p not in negative_set)
        matches |= self._apply_hard_rules(store, negative_set)
        matches = self._positive_fixpoint(store, matches, negative_set)

        if self.program.negative_rules:
            matches = self._resolve_negative_rules(store, matches, negative_set)

        if self.program.transitive_closure:
            # Closure-derived equalities can enable further rule derivations
            # (they count as matched coauthor pairs), so closure and the
            # positive fixpoint are interleaved until nothing changes.  This is
            # the "transitive closure at the end of each iteration" treatment
            # of Appendix A and keeps the matcher monotone — and therefore the
            # holistic run a superset of any message-passing run.
            while True:
                closed = MatchSet(matches).transitive_closure().pairs
                closed = set(p for p in closed if p not in negative_set)
                expanded = self._positive_fixpoint(store, set(closed), negative_set) \
                    if not self.program.negative_rules else closed
                if expanded == matches:
                    break
                matches = expanded

        return frozenset(matches)

    # ------------------------------------------------------------ hard rules
    def _apply_hard_rules(self, store: EntityStore,
                          negative: FrozenSet[EntityPair]) -> Set[EntityPair]:
        derived: Set[EntityPair] = set()
        for rule in self.program.hard_rules:
            if not store.has_relation(rule.source_relation):
                continue
            relation = store.relation(rule.source_relation)
            if relation.arity != 2:
                continue
            for first, second in relation:
                if first == second:
                    continue
                pair = EntityPair.of(first, second)
                if pair not in negative:
                    derived.add(pair)
        return derived

    # ------------------------------------------------------- positive rules
    def _coauthor_support(self, store: EntityStore, pair: EntityPair,
                          matches: Set[EntityPair]) -> int:
        """Number of distinct coauthor pairs of ``pair`` that are known equal.

        A coauthor pair ``(c1, c2)`` supports the match when ``c1 == c2`` (a
        literally shared coauthor) or ``(c1, c2)`` is already in the match
        set.  Distinctness is over unordered coauthor pairs, as in the
        paper's rule 3 (``{c1, c2} != {c3, c4}``).
        """
        if not store.has_relation(self.coauthor_relation):
            return 0
        relation = store.relation(self.coauthor_relation)
        coauthors_first = relation.neighbors(pair.first)
        coauthors_second = relation.neighbors(pair.second)
        if not coauthors_first or not coauthors_second:
            return 0
        support: Set[Tuple[str, ...]] = set()
        for c1 in coauthors_first:
            for c2 in coauthors_second:
                if c1 == c2:
                    support.add((c1,))
                elif EntityPair.of(c1, c2) in matches:
                    support.add(tuple(sorted((c1, c2))))
        return len(support)

    def _positive_fixpoint(self, store: EntityStore, matches: Set[EntityPair],
                           negative: FrozenSet[EntityPair]) -> Set[EntityPair]:
        candidates = [pair for pair in sorted(store.similar_pairs())
                      if pair not in negative]
        soft_rules = sorted(self.program.soft_rules, key=lambda r: -r.level)
        changed = True
        while changed:
            changed = False
            for pair in candidates:
                if pair in matches:
                    continue
                level = store.similarity_level(pair)
                if level == 0:
                    continue
                support: Optional[int] = None
                for rule in soft_rules:
                    if rule.level != level:
                        continue
                    if rule.min_coauthor_support == 0:
                        matches.add(pair)
                        changed = True
                        break
                    if support is None:
                        support = self._coauthor_support(store, pair, matches)
                    if support >= rule.min_coauthor_support:
                        matches.add(pair)
                        changed = True
                        break
        return matches

    # ------------------------------------------------------- negative rules
    def _negative_votes(self, store: EntityStore,
                        matches: Set[EntityPair]) -> Set[EntityPair]:
        """Pairs some negative rule votes against."""
        votes: Set[EntityPair] = set()
        for rule in self.program.negative_rules:
            if rule.kind == "no_shared_coauthor":
                for pair in matches:
                    if self._coauthor_support(store, pair, matches) == 0:
                        votes.add(pair)
            elif rule.kind == "low_similarity":
                for pair in matches:
                    if store.similarity_level(pair) < rule.threshold_level:
                        votes.add(pair)
        return votes

    def _resolve_negative_rules(self, store: EntityStore, matches: Set[EntityPair],
                                negative: FrozenSet[EntityPair]) -> Set[EntityPair]:
        votes = self._negative_votes(store, matches)
        if not votes and not negative:
            return matches
        nodes = {entity_id for pair in matches for entity_id in pair}
        clusters = pivot_correlation_clustering(
            nodes,
            positive_edges=[p for p in matches if p not in votes],
            negative_edges=set(votes) | set(negative),
            seed=self.clustering_seed,
        )
        clustered = clusters_to_matches(clusters)
        return {p for p in clustered if p not in negative}
