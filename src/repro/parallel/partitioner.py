"""Partitioning neighborhoods across grid workers.

The paper's parallel implementation randomly assigns active neighborhoods to
grid machines in each round.  Random assignment is simple but statistically
skewed: some machine receives more (or larger) neighborhoods than average, and
the round only finishes when the slowest machine does.  This skew is one of
the two reasons the observed speedup on 30 machines is ~11x rather than 30x
(Table 1), so the partitioner models it explicitly and also provides a
longest-processing-time (LPT) heuristic for comparison.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, NamedTuple, Sequence, Tuple

Task = Tuple[str, float]  # (neighborhood name, duration in seconds)


class AssignmentSummary(NamedTuple):
    """Load statistics of one worker assignment (see :func:`summarize`)."""

    makespan: float
    skew: float
    total_work: float


def random_partition(tasks: Sequence[Task], workers: int,
                     seed: int = 0) -> List[List[Task]]:
    """Assign each task to a uniformly random worker (the paper's strategy)."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    rng = random.Random(seed)
    assignment: List[List[Task]] = [[] for _ in range(workers)]
    for task in tasks:
        assignment[rng.randrange(workers)].append(task)
    return assignment


def lpt_partition(tasks: Sequence[Task], workers: int) -> List[List[Task]]:
    """Longest-processing-time-first greedy partition (a 4/3-approximation).

    Provided as the "better scheduling" alternative the paper alludes to when
    mentioning ongoing research on MapReduce skew reduction.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    assignment: List[List[Task]] = [[] for _ in range(workers)]
    loads = [0.0] * workers
    for task in sorted(tasks, key=lambda t: -t[1]):
        lightest = min(range(workers), key=lambda w: loads[w])
        assignment[lightest].append(task)
        loads[lightest] += task[1]
    return assignment


def makespan(assignment: Sequence[Sequence[Task]]) -> float:
    """Wall-clock time of one round: the load of the most loaded worker."""
    if not assignment:
        return 0.0
    return max(sum(duration for _, duration in worker_tasks)
               for worker_tasks in assignment)


def total_work(tasks: Sequence[Task]) -> float:
    """Total compute seconds across all tasks (single-machine time)."""
    return sum(duration for _, duration in tasks)


def skew(assignment: Sequence[Sequence[Task]]) -> float:
    """Ratio of the most loaded worker to the average load (1.0 = perfectly balanced)."""
    return summarize(assignment).skew


def summarize(assignment: Sequence[Sequence[Task]]) -> AssignmentSummary:
    """Makespan, skew and total work of an assignment, in one pass.

    Empty assignments summarise to ``(0.0, 1.0, 0.0)``, matching the
    conventions of :func:`makespan` and :func:`skew`.
    """
    loads = [sum(duration for _, duration in worker_tasks)
             for worker_tasks in assignment]
    if not loads:
        return AssignmentSummary(makespan=0.0, skew=1.0, total_work=0.0)
    peak = max(loads)
    total = sum(loads)
    average = total / len(loads)
    return AssignmentSummary(makespan=peak,
                             skew=peak / average if average else 1.0,
                             total_work=total)
