"""Fault-tolerant task supervision: retries, deadlines, speculation, degradation.

The plain executors of :mod:`repro.parallel.executor` have all-or-nothing
rounds: the first task failure cancels everything and discards partial
results.  That is the right contract for a correctness bug, but on a real
grid workers are *lossy* — tasks fail transiently, straggle, or take their
whole pool down with them — and the paper's deployment assumes rounds
survive that.  :class:`ResilientExecutor` wraps any existing executor and
upgrades :meth:`~repro.parallel.executor.Executor.map_tasks` into a
supervised round driven by a :class:`FaultPolicy`:

* **bounded retries** — a failed attempt is retried with exponential
  backoff; the jitter is derived from a seeded hash of ``(task name,
  attempt)``, so schedules are reproducible and no wall-clock randomness
  ever reaches results;
* **per-task deadlines** — an attempt running past ``task_timeout`` is
  abandoned (its late result is never committed) and retried;
* **speculative re-execution** — once enough tasks of the round finished,
  a quantile-based latency threshold identifies stragglers and launches one
  duplicate attempt each; whichever attempt commits first wins, duplicates
  are discarded *by task name*, so the reduce stays deterministic and match
  sets stay byte-identical to a serial run;
* **pool recovery** — a :class:`concurrent.futures.BrokenExecutor` (e.g.
  ``BrokenProcessPool`` after a worker died) rebuilds the inner pool,
  replays the share/unshare broadcast log, and resubmits every uncommitted
  task; pool loss is never charged against a task's retry budget;
* **quarantine with graceful degradation** — a task that exhausts its
  budget is re-run *inline on the caller* (the degraded serial path,
  bypassing the pool entirely); only if that also fails does a typed
  :class:`~repro.exceptions.TaskFailedError` surface, carrying the full
  per-attempt history.

Results can additionally be screened through a ``validator`` callback
(``validator(name, result) -> bool``); a result failing validation — a
misrouted or corrupted worker reply — counts as a failed attempt and is
retried.  The grid wires a validator that rejects any
:class:`~repro.parallel.tasks.MapResult` whose name does not match its task.

Every supervised round produces a :class:`RoundReport` (attempts, retries,
timeouts, speculative launches/wins, degraded runs, pool rebuilds) which
:class:`~repro.parallel.grid.GridExecutor` collects per round into
:attr:`~repro.parallel.grid.GridRunResult.round_reports`.

Determinism argument: task callables are pure functions of their payload,
results are committed into a dict keyed by task name, and the only results
that can commit are (a) a successful, validated attempt of the right task or
(b) nothing.  Retried, duplicated, abandoned and replayed attempts therefore
change *when* a result arrives, never *what* it is — which is what the chaos
matrix in ``tests/test_resilience.py`` asserts against an uninjected serial
reference.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import itertools
import math
import time
import zlib
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ExperimentError, TaskFailedError
from ..obs.trace import span
from .executor import Executor, NamedTask, ResultT

#: Result validator signature: ``(task name, result) -> is the result sane?``
Validator = Callable[[str, object], bool]


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of one supervised round (immutable, picklable).

    The defaults are conservative: retries on, no deadline, no speculation —
    a clean run pays only the supervision loop itself (benchmarked under 5%
    on the default dblp workload, see ``benchmarks/BENCH_faults.json``).
    """

    #: Seconds an attempt may run before it is abandoned and retried
    #: (``None`` disables deadlines).  Enforced only for pool-backed inner
    #: executors; an inline (serial) attempt cannot be preempted.
    task_timeout: Optional[float] = None
    #: Failed attempts re-scheduled per task before quarantine.
    retries: int = 2
    #: Base delay of the exponential backoff, in seconds.
    backoff_base: float = 0.05
    #: Growth factor per consecutive failure.
    backoff_factor: float = 2.0
    #: Upper bound on a single backoff delay, in seconds.
    backoff_max: float = 2.0
    #: Seed of the deterministic jitter (hash of seed, task name, attempt).
    jitter_seed: int = 0
    #: Launch speculative duplicates of straggler tasks.
    speculate: bool = False
    #: Completed-duration quantile that defines the straggler threshold.
    speculation_quantile: float = 0.75
    #: Multiplier on that quantile: speculate when ``elapsed > q * factor``.
    speculation_factor: float = 2.0
    #: Completions required before the quantile is considered meaningful.
    speculation_min_done: int = 3
    #: Re-run quarantined tasks inline on the caller before giving up.
    degrade_serially: bool = True
    #: Pool rebuilds tolerated per round before the round is abandoned.
    max_pool_rebuilds: int = 2

    def __post_init__(self):
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ExperimentError("task_timeout must be positive (or None)")
        if self.retries < 0:
            raise ExperimentError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1.0 \
                or self.backoff_max < self.backoff_base:
            raise ExperimentError(
                "backoff must satisfy base >= 0, factor >= 1, max >= base")
        if not 0.0 < self.speculation_quantile <= 1.0:
            raise ExperimentError("speculation_quantile must be in (0, 1]")
        if self.speculation_factor < 1.0 or self.speculation_min_done < 1:
            raise ExperimentError(
                "speculation_factor must be >= 1 and speculation_min_done >= 1")
        if self.max_pool_rebuilds < 0:
            raise ExperimentError("max_pool_rebuilds must be >= 0")


@dataclass
class AttemptRecord:
    """One attempt of one task, as recorded by the supervisor (picklable)."""

    #: 1-based attempt number within the task.
    index: int
    #: ``"pool"`` for attempts through the inner executor, ``"degraded"``
    #: for the final inline re-run on the caller.
    kind: str = "pool"
    #: Whether this attempt was a speculative duplicate of a straggler.
    speculative: bool = False
    #: ``ok`` / ``error`` / ``timeout`` / ``invalid`` / ``pool-lost`` /
    #: ``superseded`` (a duplicate that lost the commit race) / ``running``.
    outcome: str = "running"
    #: ``repr`` of the failure, when the attempt failed.
    error: Optional[str] = None
    duration: float = 0.0


@dataclass
class RoundReport:
    """Supervision counters of one ``map_tasks`` round (picklable)."""

    tasks: int = 0
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    invalid_results: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    degraded: int = 0
    pool_rebuilds: int = 0
    duplicates_discarded: int = 0
    #: Batch-kernel work reported by the round's committed map results
    #: (folded in by the grid's reduce phase; zero when the tasks ran on the
    #: scalar backend).  Plain ints so merge/aggregate/snapshot pick them up
    #: through ``fields()`` like every other counter.
    kernel_pairs_scored: int = 0
    kernel_batches: int = 0
    kernel_prefilter_checked: int = 0
    kernel_prefilter_pruned: int = 0

    def merge(self, other: "RoundReport") -> None:
        """Accumulate another round's counters into this one."""
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    @classmethod
    def aggregate(cls, reports: Sequence["RoundReport"]) -> "RoundReport":
        total = cls()
        for report in reports:
            total.merge(report)
        return total


class SupervisionHistory:
    """Bounded per-session accumulation of supervised-round reports.

    A long-lived session runs one grid round-set per change batch, each
    producing a list of :class:`RoundReport`\\ s
    (:attr:`~repro.parallel.grid.GridRunResult.round_reports` — bounded
    within one run by ``max_rounds``, but unbounded *across* batches if the
    caller keeps them all).  This class keeps that history bounded: the last
    ``limit`` per-batch aggregate reports are retained verbatim while
    running **aggregate counters** (one merged :class:`RoundReport` plus
    batch/round totals) cover everything ever recorded, including evicted
    entries — so operational metrics never lose information while memory
    stays O(limit).
    """

    def __init__(self, limit: int = 64):
        if limit < 0:
            raise ExperimentError("supervision history limit must be >= 0 "
                                  "(0 keeps aggregates only)")
        self.limit = limit
        #: Merged counters over every round ever recorded (never evicted).
        self.totals = RoundReport()
        self.batches_recorded = 0
        self.rounds_recorded = 0
        #: Per-batch aggregate reports evicted to honour ``limit``.
        self.batches_evicted = 0
        self._recent: deque = deque(maxlen=limit if limit > 0 else 1)
        if limit == 0:
            self._recent = deque(maxlen=0)

    def record(self, reports: Sequence[RoundReport]) -> None:
        """Fold one batch's round reports into the history.

        Batches that ran unsupervised (no fault policy — empty ``reports``)
        still count toward ``batches_recorded`` so gaps are visible.
        """
        self.batches_recorded += 1
        self.rounds_recorded += len(reports)
        batch_report = RoundReport.aggregate(reports)
        self.totals.merge(batch_report)
        if self.limit == 0:
            self.batches_evicted += 1
            return
        if len(self._recent) == self.limit:
            self.batches_evicted += 1
        self._recent.append(batch_report)

    @property
    def recent(self) -> Tuple[RoundReport, ...]:
        """The retained per-batch aggregates, oldest first (≤ ``limit``)."""
        return tuple(self._recent)

    def snapshot(self) -> Dict[str, int]:
        """Aggregate counters as a flat JSON-compatible dict (for metrics)."""
        counters = {spec.name: getattr(self.totals, spec.name)
                    for spec in fields(self.totals)}
        counters.update(
            batches_recorded=self.batches_recorded,
            rounds_recorded=self.rounds_recorded,
            batches_evicted=self.batches_evicted,
            history_limit=self.limit,
        )
        return counters

    def __len__(self) -> int:
        return len(self._recent)


class _TaskState:
    """Mutable supervision state of one task within a round."""

    __slots__ = ("name", "fn", "attempts", "attempts_started",
                 "charged_failures", "speculated", "pending_retry")

    def __init__(self, name: str, fn: Callable[[], object]):
        self.name = name
        self.fn = fn
        self.attempts: List[AttemptRecord] = []
        self.attempts_started = 0
        self.charged_failures = 0
        self.speculated = False
        self.pending_retry = False


def _quantile(values: Sequence[float], q: float) -> float:
    ordered = sorted(values)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


class ResilientExecutor(Executor):
    """Wraps any :class:`Executor` with per-task fault tolerance (see module docs).

    Like the executors it wraps, a resilient executor is a context manager;
    entering it enters the inner executor, so a worker pool is opened once
    per run and reused across rounds.  ``share``/``unshare`` broadcasts are
    delegated to the inner executor *and* recorded in a replay log, so a
    rebuilt pool gets every payload re-shared before any task is resubmitted.
    """

    def __init__(self, inner: Executor, policy: Optional[FaultPolicy] = None,
                 validator: Optional[Validator] = None):
        if isinstance(inner, ResilientExecutor):
            raise ExperimentError("refusing to nest resilient executors")
        self.inner = inner
        self.policy = policy if policy is not None else FaultPolicy()
        self.validator = validator
        self.kind = f"resilient+{inner.kind}"
        #: Report of the most recent round; :meth:`pop_report` consumes it.
        self.last_report: Optional[RoundReport] = None
        self._share_log: Dict[str, object] = {}

    # -------------------------------------------------------------- plumbing
    def share(self, key: str, value) -> bool:
        accepted = self.inner.share(key, value)
        if accepted:
            self._share_log[key] = value
        return accepted

    def unshare(self, key: str) -> None:
        self._share_log.pop(key, None)
        self.inner.unshare(key)

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "ResilientExecutor":
        self.inner.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self.inner.__exit__(*exc_info)

    def pop_report(self) -> Optional[RoundReport]:
        """Return and clear the report of the last supervised round."""
        report, self.last_report = self.last_report, None
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResilientExecutor({self.inner!r}, {self.policy!r})"

    # ------------------------------------------------------------- map phase
    def map_tasks(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        with self.inner:
            if self.inner.supports_supervision:
                return self._run_supervised(tasks)
            return self._run_inline(tasks)

    # The inline path (serial inner executor): per-task retry granularity
    # without futures.  Deadlines and speculation need a pool and are
    # documented as pool-only; everything else behaves identically.
    def _run_inline(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        report = RoundReport(tasks=len(tasks))
        results: Dict[str, ResultT] = {}
        for name, fn in tasks:
            if name in results:
                raise ExperimentError(f"duplicate task name {name!r}")
            state = _TaskState(name, fn)
            while True:
                state.attempts_started += 1
                attempt = AttemptRecord(index=state.attempts_started)
                state.attempts.append(attempt)
                report.attempts += 1
                started = time.perf_counter()
                try:
                    # One-task batches through the inner executor keep its
                    # submission seam (and any test proxy around it) in play.
                    value = self.inner.map_tasks([(name, fn)])[name]
                except Exception as error:
                    attempt.duration = time.perf_counter() - started
                    attempt.outcome = "error"
                    attempt.error = repr(error)
                    report.failures += 1
                else:
                    attempt.duration = time.perf_counter() - started
                    if self.validator is not None \
                            and not self.validator(name, value):
                        attempt.outcome = "invalid"
                        attempt.error = "result failed validation"
                        report.invalid_results += 1
                    else:
                        attempt.outcome = "ok"
                        results[name] = value
                        break
                state.charged_failures += 1
                if state.charged_failures <= self.policy.retries:
                    report.retries += 1
                    time.sleep(self._backoff_delay(name, state.charged_failures))
                else:
                    self._quarantine(state, report, results)
                    break
        self.last_report = report
        return results

    # The supervised path (pool-backed inner executor): an event loop over
    # live futures, which is what makes deadlines, speculation and pool
    # recovery possible.
    def _run_supervised(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        policy = self.policy
        report = RoundReport(tasks=len(tasks))
        states: Dict[str, _TaskState] = {}
        for name, fn in tasks:
            if name in states:
                raise ExperimentError(f"duplicate task name {name!r}")
            states[name] = _TaskState(name, fn)
        results: Dict[str, ResultT] = {}
        #: future -> (state, attempt record, monotonic start time)
        active: Dict[concurrent.futures.Future,
                     Tuple[_TaskState, AttemptRecord, float]] = {}
        #: min-heap of (ready time, tiebreak, task name) — both initial
        #: submissions (ready now) and scheduled retries flow through it.
        queue: List[Tuple[float, int, str]] = []
        tiebreak = itertools.count()
        durations: List[float] = []

        def enqueue(state: _TaskState, ready: float) -> None:
            heapq.heappush(queue, (ready, next(tiebreak), state.name))
            state.pending_retry = True

        def submit(state: _TaskState, speculative: bool = False) -> None:
            state.attempts_started += 1
            attempt = AttemptRecord(index=state.attempts_started,
                                    speculative=speculative)
            state.attempts.append(attempt)
            report.attempts += 1
            if speculative:
                state.speculated = True
                report.speculative_launches += 1
            future = self.inner.submit_task(state.name, state.fn)
            if future is None:
                raise ExperimentError(
                    "inner executor stopped supporting supervision mid-round")
            active[future] = (state, attempt, time.monotonic())

        def active_count(state: _TaskState) -> int:
            return sum(1 for held, _, _ in active.values() if held is state)

        def after_failure(state: _TaskState) -> None:
            state.charged_failures += 1
            if state.charged_failures <= policy.retries:
                report.retries += 1
                delay = self._backoff_delay(state.name, state.charged_failures)
                enqueue(state, time.monotonic() + delay)
            elif active_count(state) == 0:
                # Budget exhausted and nothing else in flight for this task:
                # quarantine now.  With a duplicate still running, defer —
                # its completion decides (commit, or reach this same branch).
                self._quarantine(state, report, results)

        def recover_pool(extra_lost: Sequence[_TaskState] = ()) -> None:
            report.pool_rebuilds += 1
            if report.pool_rebuilds > policy.max_pool_rebuilds:
                raise ExperimentError(
                    f"worker pool died {report.pool_rebuilds} times in one "
                    f"round (max_pool_rebuilds={policy.max_pool_rebuilds}); "
                    "giving up on the round")
            for future, (state, attempt, started) in active.items():
                attempt.outcome = "pool-lost"
                attempt.duration = time.monotonic() - started
                future.cancel()
            lost = {state.name for state, _, _ in active.values()}
            lost.update(state.name for state in extra_lost)
            active.clear()
            with span("supervision.pool_rebuild",
                      rebuild=report.pool_rebuilds, lost=len(lost)):
                self.inner.rebuild()
                for key, value in self._share_log.items():
                    self.inner.share(key, value)
            now = time.monotonic()
            for name in sorted(lost):
                state = states[name]
                # Pool death is not the task's fault: resubmit without
                # charging the retry budget (unless a retry is already
                # queued for it).
                if name not in results and not state.pending_retry:
                    enqueue(state, now)

        try:
            now = time.monotonic()
            for state in states.values():
                enqueue(state, now)
            while len(results) < len(states):
                now = time.monotonic()
                # Launch everything that is due (initial work and retries).
                while queue and queue[0][0] <= now:
                    _, _, name = heapq.heappop(queue)
                    state = states[name]
                    state.pending_retry = False
                    if name in results:
                        continue
                    try:
                        submit(state)
                    except concurrent.futures.BrokenExecutor:
                        state.attempts[-1].outcome = "pool-lost"
                        recover_pool()
                        if name not in results and not state.pending_retry:
                            enqueue(state, time.monotonic())
                # Speculation: duplicate stragglers once the round has a
                # meaningful latency distribution.
                threshold: Optional[float] = None
                if policy.speculate and \
                        len(durations) >= policy.speculation_min_done:
                    threshold = _quantile(durations,
                                          policy.speculation_quantile) \
                        * policy.speculation_factor
                    for state, attempt, started in list(active.values()):
                        if state.speculated or state.name in results:
                            continue
                        if now - started > threshold \
                                and active_count(state) == 1:
                            try:
                                submit(state, speculative=True)
                            except concurrent.futures.BrokenExecutor:
                                state.attempts[-1].outcome = "pool-lost"
                                recover_pool()
                                break
                if not active:
                    if not queue:
                        raise ExperimentError(
                            "resilient round stalled: unfinished tasks with "
                            "no attempt in flight and none scheduled")
                    time.sleep(max(0.0, queue[0][0] - time.monotonic()))
                    continue
                done = self._wait(active, queue, threshold, durations)
                now = time.monotonic()
                broken_states: List[_TaskState] = []
                for future in done:
                    state, attempt, started = active.pop(future)
                    attempt.duration = now - started
                    if state.name in results:
                        attempt.outcome = "superseded"
                        report.duplicates_discarded += 1
                        continue
                    error = future.exception()
                    if isinstance(error, concurrent.futures.BrokenExecutor):
                        attempt.outcome = "pool-lost"
                        broken_states.append(state)
                        continue
                    if error is not None:
                        attempt.outcome = "error"
                        attempt.error = repr(error)
                        report.failures += 1
                        after_failure(state)
                        continue
                    value = future.result()
                    if self.validator is not None \
                            and not self.validator(state.name, value):
                        attempt.outcome = "invalid"
                        attempt.error = "result failed validation"
                        report.invalid_results += 1
                        after_failure(state)
                        continue
                    attempt.outcome = "ok"
                    results[state.name] = value
                    durations.append(attempt.duration)
                    if attempt.speculative:
                        report.speculative_wins += 1
                if broken_states:
                    recover_pool(extra_lost=broken_states)
                    continue
                # Deadline scan: abandon attempts past the task timeout.
                # An abandoned future is never read again — a late result
                # cannot commit.
                if policy.task_timeout is not None:
                    for future in list(active):
                        state, attempt, started = active[future]
                        if now - started < policy.task_timeout \
                                or state.name in results:
                            continue
                        del active[future]
                        future.cancel()
                        attempt.outcome = "timeout"
                        attempt.duration = now - started
                        report.timeouts += 1
                        after_failure(state)
        except BaseException:
            for future in active:
                future.cancel()
            self.last_report = report
            raise
        self.last_report = report
        return results

    def _wait(self, active, queue, threshold: Optional[float],
              durations: Sequence[float]):
        """Block until some attempt completes or the next scheduled event.

        With no deadline, no queued retry and no armed speculation the wait
        is unbounded (pure completion-driven — this is why a clean run pays
        almost nothing for supervision).
        """
        policy = self.policy
        now = time.monotonic()
        deadlines: List[float] = []
        if queue:
            deadlines.append(queue[0][0])
        if policy.task_timeout is not None:
            deadlines.extend(started + policy.task_timeout
                             for _, _, started in active.values())
        if policy.speculate:
            if threshold is not None:
                deadlines.extend(
                    started + threshold
                    for state, _, started in active.values()
                    if not state.speculated)
            elif len(durations) >= policy.speculation_min_done:
                deadlines.append(now)  # threshold just became computable
        timeout = None
        if deadlines:
            timeout = max(0.0, min(deadlines) - now)
        done, _ = concurrent.futures.wait(
            set(active), timeout=timeout,
            return_when=concurrent.futures.FIRST_COMPLETED)
        return done

    # ------------------------------------------------------------ last lines
    def _quarantine(self, state: _TaskState, report: RoundReport,
                    results: Dict[str, ResultT]) -> None:
        """Budget exhausted: degraded inline re-run, then the typed failure."""
        if not self.policy.degrade_serially:
            raise TaskFailedError(state.name, state.attempts)
        report.degraded += 1
        state.attempts_started += 1
        attempt = AttemptRecord(index=state.attempts_started, kind="degraded")
        state.attempts.append(attempt)
        report.attempts += 1
        started = time.perf_counter()
        try:
            with span("supervision.degraded_run", task=state.name):
                value = self.inner.run_inline(state.name, state.fn)
        except Exception as error:
            attempt.duration = time.perf_counter() - started
            attempt.outcome = "error"
            attempt.error = repr(error)
            raise TaskFailedError(state.name, state.attempts) from error
        attempt.duration = time.perf_counter() - started
        if self.validator is not None \
                and not self.validator(state.name, value):
            attempt.outcome = "invalid"
            attempt.error = "result failed validation"
            raise TaskFailedError(state.name, state.attempts)
        attempt.outcome = "ok"
        results[state.name] = value

    def _backoff_delay(self, name: str, failure_count: int) -> float:
        """Exponential backoff with deterministic, seeded jitter."""
        policy = self.policy
        base = min(policy.backoff_max,
                   policy.backoff_base
                   * policy.backoff_factor ** (failure_count - 1))
        token = f"{policy.jitter_seed}:{name}:{failure_count}".encode("utf-8")
        jitter = zlib.crc32(token) / 2 ** 32
        return base * (1.0 + jitter)
