"""Per-process registry of broadcast payloads for the map phase.

The grid executor ships each round's neighborhood tasks through a pluggable
executor.  With the compact store backend the heavy, round-invariant payloads
— the :class:`~repro.datamodel.compact.CompactStore` snapshot and the matcher
— are *broadcast once per execution context* instead of travelling inside
every task:

* in-process executors (serial/threads) install them straight into this
  module's registry, so tasks resolve the very same objects (zero copy);
* the process executor passes them to every worker through the pool's
  ``initializer`` — each worker unpickles the snapshot exactly once at
  spawn, and every subsequent task carries only integer member lists and
  evidence pairs (see :class:`repro.parallel.tasks.CompactMapTask`).

Next to the registry lives a per-snapshot cache of the restricted
:class:`~repro.datamodel.compact.StoreView` objects, keyed by the task's
member tuple: revisits of the same neighborhood in later rounds reuse the
same view object, which keeps identity-keyed matcher caches (the MLN ground
network cache) warm inside a worker.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..exceptions import ExperimentError

#: key -> broadcast payload, installed by an executor for this process.
_SHARED: Dict[str, Any] = {}
#: snapshot token -> (member tuple -> StoreView), dropped on unshare.
_VIEWS: Dict[str, Dict[Tuple[int, ...], Any]] = {}


def install_shared(items: Dict[str, Any]) -> None:
    """Install broadcast payloads (the process-pool worker initializer)."""
    _SHARED.update(items)


def share_local(key: str, value: Any) -> None:
    """Install one payload in this process's registry."""
    _SHARED[key] = value


def unshare_local(key: str) -> None:
    """Drop a payload (and any views derived from it) from this process."""
    _SHARED.pop(key, None)
    _VIEWS.pop(key, None)


def get_shared(key: str) -> Any:
    """Resolve a broadcast payload installed in this process."""
    try:
        return _SHARED[key]
    except KeyError:
        raise ExperimentError(
            f"shared payload {key!r} is not installed in this process; "
            "compact map tasks require the snapshot to be broadcast via "
            "Executor.share before the pool starts") from None


def view_for(snapshot_token: str, members: Tuple[int, ...]) -> Any:
    """The (cached) restricted view of a broadcast snapshot."""
    views = _VIEWS.setdefault(snapshot_token, {})
    view = views.get(members)
    if view is None:
        view = get_shared(snapshot_token).restrict_indices(members)
        views[members] = view
    return view
