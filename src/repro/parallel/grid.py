"""Round-based (MapReduce-style) parallel execution of the framework.

Section 6.3 parallelises message passing in rounds: every active neighborhood
is processed in parallel (the Map), the new evidence is collected (the
Reduce), and the next round's active set is derived from it.  The paper runs
this on a 30-machine Hadoop grid; here the map phase is dispatched through a
pluggable :class:`~repro.parallel.executor.Executor` — serial, thread pool or
process pool — against an immutable evidence snapshot, and the reduce phase
merges per-neighborhood results in deterministic (sorted-name) order, so all
executors produce match sets identical to the sequential schemes (the schemes
are consistent, Theorem 2).

Two per-round costs are kept incremental: the evidence snapshot is *routed*
instead of re-restricted (each new match is added once to the evidence set of
the neighborhoods containing both its entities), and each task carries its
neighborhood's previous-round result as a warm start (per-neighborhood
evidence only grows across rounds, so for idempotent + monotone matchers the
old result seeds the new search — crucial under the process executor, where
matcher-side caches do not survive pickling).

Two complementary views of grid wall-clock come out of one run:

* the *measured* ``elapsed_seconds`` of the run under the chosen executor
  (real speedup on this machine), and
* the *simulated* wall-clock of a grid of ``W`` machines, evaluated from the
  recorded per-neighborhood durations: each round's neighborhoods are randomly
  assigned to the ``W`` workers (statistical skew included, as in the paper)
  and the round takes as long as its most loaded worker, plus a fixed
  per-round overhead modelling job setup on the grid.
  :meth:`GridRunResult.simulated_wall_clock` can be evaluated for any machine
  count, which is how the Table-1 bench compares 1 vs 30 machines from a
  single run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from ..blocking import Cover
from ..core import NeighborhoodRunner, SchemeResult
from ..core.messages import MaximalMessageSet
from ..core.mmp import SCORE_TOLERANCE
from ..datamodel import CompactStore, EntityPair, EntityStore, StoreView
from ..exceptions import ExperimentError, MatcherError
from ..kernels.counters import KernelCounters, fold_into_registry
from ..matchers import TypeIIMatcher, TypeIMatcher
from ..obs import registry as obs_registry
from ..obs import trace as obs_trace
from .executor import Executor, NamedTask, SerialExecutor, make_executor
from .partitioner import Task, lpt_partition, makespan, random_partition, total_work
from .resilience import FaultPolicy, ResilientExecutor, RoundReport
from .tasks import (
    CompactMapTask,
    MapResult,
    MapTask,
    execute_compact_map_task,
    execute_map_task,
    validate_map_result,
)


# Registry handles for the grid's work accounting — get-or-create once at
# import, cheap locked increments per round / committed task thereafter.
_GRID_RUNS = obs_registry.counter(
    "grid_runs_total", "Grid runs executed", labels=("scheme", "executor"))
_GRID_ROUNDS = obs_registry.counter(
    "grid_rounds_total", "Grid rounds executed")
_GRID_TASKS = obs_registry.counter(
    "grid_tasks_total", "Map-task results committed by reduce phases")
_GRID_MATCHES = obs_registry.counter(
    "grid_new_matches_total", "New matches committed by reduce phases")
_ROUND_SECONDS = obs_registry.histogram(
    "grid_round_seconds", "Wall-clock of one grid round")
_TASK_SECONDS = obs_registry.histogram(
    "grid_task_seconds", "In-task measured duration of committed map results")
_SUPERVISION_TOTALS = {
    name: obs_registry.counter(
        f"supervision_{name}_total", f"Supervised-round {name.replace('_', ' ')}")
    for name in ("attempts", "retries", "failures", "timeouts",
                 "speculative_launches", "speculative_wins", "degraded",
                 "pool_rebuilds")
}
_CACHE_HITS = obs_registry.counter(
    "lru_cache_hits_total", "LRU cache hits", labels=("cache",))
_CACHE_MISSES = obs_registry.counter(
    "lru_cache_misses_total", "LRU cache misses", labels=("cache",))


@dataclass
class GridRunResult:
    """Matches plus the per-round task durations recorded by the executor."""

    scheme: str
    matcher: str
    matches: FrozenSet[EntityPair]
    rounds: List[List[Task]] = field(default_factory=list)
    neighborhood_runs: int = 0
    elapsed_seconds: float = 0.0
    executor: str = "serial"
    #: Final per-neighborhood result of every neighborhood that ran, filled
    #: only when ``run(collect_results=True)`` — the provenance the streaming
    #: layer keeps to decide what a later delta invalidates.
    neighborhood_results: Dict[str, FrozenSet[EntityPair]] = field(default_factory=dict)
    #: First derivation of each newly-found pair: ``pair -> (neighborhood
    #: name, 0-based round index)``, deterministic (sorted-name reduce order).
    #: Also only filled under ``collect_results=True``; pairs seeded through
    #: ``initial_matches`` keep whatever provenance the caller tracks.
    pair_origins: Dict[EntityPair, Tuple[str, int]] = field(default_factory=dict)
    #: One supervision report per round, filled only when the run went through
    #: a :class:`~repro.parallel.resilience.ResilientExecutor` (i.e. a
    #: ``fault_policy`` was configured): attempts, retries, timeouts,
    #: speculative launches/wins, degraded tasks, pool rebuilds.
    round_reports: List[RoundReport] = field(default_factory=list)
    #: Batch-kernel work aggregated over every committed map result of the
    #: run (pairs scored, batch invocations, prefilter traffic).  All zeros
    #: when the tasks resolved the scalar backend.
    kernel_counters: KernelCounters = field(default_factory=KernelCounters)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    def total_compute_seconds(self) -> float:
        """Total matcher compute across all rounds (single-machine work).

        Only meaningful for a run under the serial executor: durations are
        measured inside whichever executor ran the tasks, so a concurrent run
        inflates them with GIL/scheduler contention.
        """
        return sum(total_work(tasks) for tasks in self.rounds)

    def simulated_wall_clock(self, workers: int, per_round_overhead: float = 0.0,
                             seed: int = 0, strategy: str = "random") -> float:
        """Simulated wall-clock of running the recorded rounds on ``workers`` machines.

        Use durations recorded by a *serial* run as the input (see
        :meth:`total_compute_seconds`); simulating a grid from contended
        thread/process timings overstates per-task compute.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if strategy not in ("random", "lpt"):
            raise ExperimentError(f"unknown partition strategy {strategy!r}")
        clock = 0.0
        for round_index, tasks in enumerate(self.rounds):
            if not tasks:
                continue
            if strategy == "random":
                assignment = random_partition(tasks, workers, seed=seed + round_index)
            else:
                assignment = lpt_partition(tasks, workers)
            clock += makespan(assignment) + per_round_overhead
        return clock

    def speedup(self, workers: int, per_round_overhead: float = 0.0,
                seed: int = 0) -> float:
        """Speedup of ``workers`` machines over a single machine."""
        single = self.simulated_wall_clock(1, per_round_overhead, seed)
        multi = self.simulated_wall_clock(workers, per_round_overhead, seed)
        if multi == 0.0:
            return 1.0
        return single / multi

    def to_scheme_result(self) -> SchemeResult:
        """View as a plain :class:`SchemeResult` (single-machine timing)."""
        return SchemeResult(
            scheme=f"grid-{self.scheme}",
            matcher=self.matcher,
            matches=self.matches,
            neighborhood_runs=self.neighborhood_runs,
            rounds=self.round_count,
            elapsed_seconds=self.elapsed_seconds,
            matcher_seconds=self.total_compute_seconds(),
        )


class GridExecutor:
    """Round-based executor for NO-MP, SMP and MMP with a pluggable map phase.

    ``executor`` selects how each round's active neighborhoods are executed:
    an :class:`~repro.parallel.executor.Executor` instance, a spec string
    (``"serial"``, ``"threads"``, ``"processes"``), or ``None`` for serial.
    Whatever the executor, the produced match set is identical: every task of
    a round reads the same immutable evidence snapshot and the reduce phase
    merges results in sorted neighborhood order.

    Each run enters the executor for its duration, so a worker pool is opened
    once, reused for every round, and released on exit.  A caller-supplied
    executor that is already inside a ``with executor:`` block keeps its pool
    across runs (entry is re-entrant); a pool the caller opened is never
    closed here.

    A ``fault_policy`` (:class:`~repro.parallel.resilience.FaultPolicy`)
    wraps the chosen executor in a
    :class:`~repro.parallel.resilience.ResilientExecutor` with a result
    validator, upgrading rounds from first-failure-aborts to supervised
    execution (retries, deadlines, speculation, degradation); each round's
    :class:`~repro.parallel.resilience.RoundReport` is collected into
    :attr:`GridRunResult.round_reports`.  A caller-supplied resilient
    executor is used as-is (its own policy wins), gaining the grid's
    validator only if it has none.
    """

    def __init__(self, scheme: str = "smp", max_rounds: int = 50,
                 compute_messages_once: bool = True,
                 executor: Union[Executor, str, None] = None,
                 workers: Optional[int] = None,
                 fault_policy: Optional[FaultPolicy] = None):
        normalized = scheme.lower().replace("_", "-")
        if normalized not in ("no-mp", "nomp", "smp", "mmp"):
            raise ExperimentError(f"unknown grid scheme {scheme!r}")
        self.scheme = "no-mp" if normalized in ("no-mp", "nomp") else normalized
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = max_rounds
        self.compute_messages_once = compute_messages_once
        if executor is None:
            self.executor: Executor = SerialExecutor()
        elif isinstance(executor, str):
            self.executor = make_executor(executor, workers)
        else:
            self.executor = executor
        if isinstance(self.executor, ResilientExecutor):
            if self.executor.validator is None:
                self.executor.validator = validate_map_result
        elif fault_policy is not None:
            self.executor = ResilientExecutor(
                self.executor, fault_policy, validator=validate_map_result)

    # -------------------------------------------------------------------- run
    def run(self, matcher: TypeIMatcher, store: EntityStore, cover: Cover,
            initial_matches: FrozenSet[EntityPair] = frozenset(),
            initial_active: Optional[Iterable[str]] = None,
            negative_evidence: FrozenSet[EntityPair] = frozenset(),
            collect_results: bool = False,
            store_cache: Optional[Dict[str, EntityStore]] = None) -> GridRunResult:
        """Run the rounds until no neighborhood produces anything new.

        The defaults reproduce a cold batch run: every neighborhood active in
        round one, no standing evidence.  The streaming layer instead seeds
        ``initial_matches`` with the still-valid part of the previous match
        set, activates only the ``initial_active`` dirty neighborhoods, and
        threads the standing ``negative_evidence`` into every task; for
        monotone, idempotent matchers the chaotic iteration from that seed
        converges to the same fixpoint a cold run reaches on the final
        instance.  ``collect_results`` returns each ran neighborhood's final
        matches in :attr:`GridRunResult.neighborhood_results`;
        ``store_cache`` shares materialised neighborhood stores across runs
        (the caller owns invalidation — see
        :class:`~repro.core.runner.NeighborhoodRunner`).
        """
        if self.scheme == "mmp" and not isinstance(matcher, TypeIIMatcher):
            raise MatcherError("the mmp grid scheme requires a Type-II matcher")
        active_seed = None if initial_active is None else set(initial_active)
        if active_seed is not None:
            unknown = active_seed - set(cover.names())
            if unknown:
                raise ExperimentError(
                    f"initial_active names unknown neighborhoods: {sorted(unknown)[:3]}")
        # The runner is used only to build (and cache across rounds) the
        # restricted neighborhood stores; the matcher calls themselves happen
        # inside the map tasks.
        runner = NeighborhoodRunner(matcher, store, cover,
                                    store_cache=store_cache)
        started = time.perf_counter()

        # Compact snapshot mode: broadcast the store and the matcher once per
        # execution context and ship only integer member lists + int-encoded
        # evidence per task.  Falls back to self-contained payloads when the
        # broadcast cannot be guaranteed (a caller-opened process pool).
        snapshot: Optional[CompactStore] = \
            store if isinstance(store, CompactStore) else None
        snapshot_keys: tuple = ()
        if snapshot is not None:
            token = snapshot.snapshot_token
            matcher_key = token + "/matcher"
            if self.executor.share(token, snapshot):
                if self.executor.share(matcher_key, matcher):
                    snapshot_keys = (token, matcher_key)
                else:
                    self.executor.unshare(token)
        use_snapshot = bool(snapshot_keys)
        member_cache: Dict[str, tuple] = {}
        # Fallback for compact stores without broadcast: ship materialised
        # dict sub-stores (a StoreView pickles its whole base snapshot).
        shippable_cache: Dict[str, EntityStore] = {}

        def shippable_store(name: str) -> EntityStore:
            neighborhood_store = runner.neighborhood_store(name)
            if isinstance(neighborhood_store, StoreView):
                cached = shippable_cache.get(name)
                if cached is None:
                    cached = neighborhood_store.to_entity_store()
                    shippable_cache[name] = cached
                return cached
            return neighborhood_store

        matches: Set[EntityPair] = set(initial_matches)
        message_set = MaximalMessageSet()
        probed: Set[str] = set()
        active: Set[str] = set(cover.names()) if active_seed is None else active_seed
        rounds: List[List[Task]] = []
        neighborhood_results: Dict[str, FrozenSet[EntityPair]] = {}
        neighborhood_runs = 0
        # Standing negative evidence, routed once per neighborhood (negatives
        # never change during a run).
        negative_index: Dict[str, FrozenSet[EntityPair]] = {}
        if negative_evidence:
            routed_negative: Dict[str, Set[EntityPair]] = {}
            for pair in negative_evidence:
                for name in cover.neighborhoods_of_pair(pair):
                    routed_negative.setdefault(name, set()).add(pair)
            negative_index = {name: frozenset(pairs)
                              for name, pairs in routed_negative.items()}
        empty_negative: FrozenSet[EntityPair] = frozenset()
        # Per-neighborhood evidence, maintained incrementally: each new match
        # is routed once to the neighborhoods containing both its entities,
        # instead of re-restricting the full snapshot for every active
        # neighborhood every round (O(new pairs · degree) vs
        # O(|matches| · |active|)).
        evidence_index: Dict[str, Set[EntityPair]] = {
            name: set() for name in cover.names()}
        distributed: Set[EntityPair] = set()
        # Previous-round result per neighborhood: its evidence only grows
        # across rounds, so it warm-starts the next visit (for matchers that
        # support it) even when the task is shipped to a fresh process.
        warm_capable = bool(getattr(matcher, "supports_warm_start", False))
        last_results: Dict[str, FrozenSet[EntityPair]] = {}

        pair_origins: Dict[EntityPair, Tuple[str, int]] = {}
        round_reports: List[RoundReport] = []
        run_kernel = KernelCounters()
        pop_report = getattr(self.executor, "pop_report", None)
        # One flag decides whether tasks capture spans for re-parenting; it
        # travels on the task payloads so pool workers (which have no tracer)
        # know to collect.
        trace_tasks = obs_trace.enabled()
        try:
            with obs_trace.span("grid.run", scheme=self.scheme,
                                executor=self.executor.kind,
                                neighborhoods=len(cover.names())) as run_span, \
                    self.executor:
                for round_index in range(self.max_rounds):
                    if not active:
                        break
                    round_started = time.perf_counter()
                    round_span = obs_trace.span("grid.round",
                                                round=round_index,
                                                active=len(active))
                    with round_span:
                        evidence_snapshot = frozenset(matches)
                        for pair in evidence_snapshot - distributed:
                            for name in cover.neighborhoods_of_pair(pair):
                                evidence_index[name].add(pair)
                        distributed |= evidence_snapshot

                        # Map phase: every active neighborhood runs against
                        # the snapshot, dispatched through the executor.
                        tasks: List[NamedTask] = []
                        for name in sorted(active):
                            compute_messages = self.scheme == "mmp" and (
                                not self.compute_messages_once or name not in probed)
                            if compute_messages:
                                probed.add(name)
                            warm_start = last_results.get(name, frozenset()) \
                                if warm_capable else frozenset()
                            negative = negative_index.get(name, empty_negative)
                            if use_snapshot:
                                members = member_cache.get(name)
                                if members is None:
                                    members = snapshot.indices_for(
                                        cover.neighborhood(name).entity_ids)
                                    member_cache[name] = members
                                compact_payload = CompactMapTask(
                                    name=name, snapshot=snapshot_keys[0],
                                    matcher_key=snapshot_keys[1], members=members,
                                    evidence=snapshot.encode_pairs(evidence_index[name]),
                                    compute_messages=compute_messages,
                                    warm_start=snapshot.encode_pairs(warm_start),
                                    negative=snapshot.encode_pairs(negative),
                                    trace=trace_tasks)
                                tasks.append((name, partial(execute_compact_map_task,
                                                            compact_payload)))
                                continue
                            payload = MapTask(name=name, matcher=matcher,
                                              store=shippable_store(name),
                                              evidence=frozenset(evidence_index[name]),
                                              compute_messages=compute_messages,
                                              warm_start=warm_start,
                                              negative=negative,
                                              trace=trace_tasks)
                            tasks.append((name, partial(execute_map_task, payload)))
                        results = self.executor.map_tasks(tasks)
                        current_report: Optional[RoundReport] = None
                        if pop_report is not None:
                            current_report = pop_report()
                            if current_report is not None:
                                round_reports.append(current_report)
                                for field_name, handle in \
                                        _SUPERVISION_TOTALS.items():
                                    handle.inc(getattr(current_report,
                                                       field_name))

                        # Reduce phase: merge per-neighborhood results in
                        # sorted-name order (independent of executor
                        # completion order), promote maximal messages (MMP
                        # only).  Worker telemetry folds in here too: task
                        # spans re-parent under the round span and metric
                        # deltas land in this process's registry.
                        round_tasks: List[Task] = []
                        round_new: Set[EntityPair] = set()
                        round_kernel = KernelCounters()
                        for name in sorted(results):
                            result: MapResult = results[name]
                            fresh = result.matches - evidence_snapshot
                            if collect_results:
                                for pair in fresh - round_new:
                                    pair_origins.setdefault(pair, (name, round_index))
                            round_new |= fresh
                            message_set.add_all(result.messages)
                            neighborhood_runs += result.matcher_calls
                            round_kernel.merge(KernelCounters.from_tuple(
                                getattr(result, "kernel_counters", ())))
                            round_tasks.append((name, result.duration))
                            _TASK_SECONDS.observe(result.duration)
                            worker_spans = getattr(result, "spans", ())
                            if worker_spans:
                                obs_trace.fold(worker_spans, round_span)
                            worker_metrics = getattr(result, "metric_deltas", ())
                            if worker_metrics:
                                obs_registry.registry().apply_wire(worker_metrics)
                            if collect_results:
                                neighborhood_results[name] = result.matches
                            if warm_capable:
                                last_results[name] = result.matches
                        rounds.append(round_tasks)
                        run_kernel.merge(round_kernel)
                        if current_report is not None:
                            current_report.kernel_pairs_scored += round_kernel.pairs_scored
                            current_report.kernel_batches += round_kernel.batches
                            current_report.kernel_prefilter_checked += \
                                round_kernel.prefilter_checked
                            current_report.kernel_prefilter_pruned += \
                                round_kernel.prefilter_pruned
                        fold_into_registry(round_kernel)

                        matches |= round_new
                        if self.scheme == "mmp":
                            round_new |= self._promote_messages(matcher, store,
                                                                matches, message_set)

                        if self.scheme == "no-mp":
                            active = set()
                        elif not round_new:
                            active = set()
                        else:
                            active = set(cover.neighbors_of_pairs(round_new))
                        round_span.add_attrs(tasks=len(round_tasks),
                                             new_matches=len(round_new))
                    _GRID_ROUNDS.inc()
                    _GRID_TASKS.inc(len(round_tasks))
                    _GRID_MATCHES.inc(len(round_new))
                    _ROUND_SECONDS.observe(time.perf_counter() - round_started)
                run_span.add_attrs(rounds=len(rounds), matches=len(matches))
        finally:
            for key in snapshot_keys:
                self.executor.unshare(key)
        _GRID_RUNS.inc(scheme=self.scheme, executor=self.executor.kind)
        consume_cache_stats = getattr(matcher, "consume_cache_stats", None)
        if consume_cache_stats is not None:
            # Matcher-side LRU efficacy (parent-process matcher only; a
            # broadcast copy in a pool worker keeps its own tallies).
            for cache, stats in consume_cache_stats().items():
                _CACHE_HITS.inc(stats["hits"], cache=cache)
                _CACHE_MISSES.inc(stats["misses"], cache=cache)

        elapsed = time.perf_counter() - started
        return GridRunResult(
            scheme=self.scheme,
            matcher=matcher.name,
            matches=frozenset(matches),
            rounds=rounds,
            neighborhood_runs=neighborhood_runs,
            elapsed_seconds=elapsed,
            executor=self.executor.kind,
            neighborhood_results=neighborhood_results,
            pair_origins=pair_origins,
            round_reports=round_reports,
            kernel_counters=run_kernel,
        )

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _promote_messages(matcher: TypeIIMatcher, store: EntityStore,
                          matches: Set[EntityPair],
                          message_set: MaximalMessageSet) -> Set[EntityPair]:
        promoted: Set[EntityPair] = set()
        progress = True
        while progress:
            progress = False
            for message in message_set.messages():
                pending = frozenset(p for p in message if p not in matches)
                if not pending:
                    message_set.discard_pairs(message)
                    continue
                if matcher.score_delta(store, matches, pending) >= -SCORE_TOLERANCE:
                    matches |= pending
                    promoted |= pending
                    message_set.discard_pairs(message)
                    progress = True
        return promoted
