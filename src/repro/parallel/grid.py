"""Round-based (MapReduce-style) parallel execution of the framework.

Section 6.3 parallelises message passing in rounds: every active neighborhood
is processed in parallel (the Map), the new evidence is collected (the
Reduce), and the next round's active set is derived from it.  The paper runs
this on a 30-machine Hadoop grid; here the *computation* is performed locally
(and exactly — the match results are identical to the sequential schemes,
because the schemes are consistent) while the *wall-clock* of a grid of ``W``
machines is simulated from the measured per-neighborhood durations:

* each round's neighborhoods are randomly assigned to the ``W`` workers
  (statistical skew included, as in the paper),
* the round takes as long as its most loaded worker, plus a fixed per-round
  overhead modelling job setup on the grid.

Running the executor once records the per-round task durations;
:meth:`GridRunResult.simulated_wall_clock` can then be evaluated for any
number of machines, which is how the Table-1 bench compares 1 vs 30 machines
from a single run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..blocking import Cover
from ..core import NeighborhoodRunner, SchemeResult, compute_maximal_messages
from ..core.messages import MaximalMessageSet
from ..core.mmp import SCORE_TOLERANCE
from ..datamodel import EntityPair, EntityStore
from ..exceptions import ExperimentError, MatcherError
from ..matchers import TypeIIMatcher, TypeIMatcher
from .partitioner import Task, lpt_partition, makespan, random_partition, total_work


@dataclass
class GridRunResult:
    """Matches plus the per-round task durations recorded by the executor."""

    scheme: str
    matcher: str
    matches: FrozenSet[EntityPair]
    rounds: List[List[Task]] = field(default_factory=list)
    neighborhood_runs: int = 0
    elapsed_seconds: float = 0.0

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    def total_compute_seconds(self) -> float:
        """Total matcher compute across all rounds (single-machine work)."""
        return sum(total_work(tasks) for tasks in self.rounds)

    def simulated_wall_clock(self, workers: int, per_round_overhead: float = 0.0,
                             seed: int = 0, strategy: str = "random") -> float:
        """Simulated wall-clock of running the recorded rounds on ``workers`` machines."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if strategy not in ("random", "lpt"):
            raise ExperimentError(f"unknown partition strategy {strategy!r}")
        clock = 0.0
        for round_index, tasks in enumerate(self.rounds):
            if not tasks:
                continue
            if strategy == "random":
                assignment = random_partition(tasks, workers, seed=seed + round_index)
            else:
                assignment = lpt_partition(tasks, workers)
            clock += makespan(assignment) + per_round_overhead
        return clock

    def speedup(self, workers: int, per_round_overhead: float = 0.0,
                seed: int = 0) -> float:
        """Speedup of ``workers`` machines over a single machine."""
        single = self.simulated_wall_clock(1, per_round_overhead, seed)
        multi = self.simulated_wall_clock(workers, per_round_overhead, seed)
        if multi == 0.0:
            return 1.0
        return single / multi

    def to_scheme_result(self) -> SchemeResult:
        """View as a plain :class:`SchemeResult` (single-machine timing)."""
        return SchemeResult(
            scheme=f"grid-{self.scheme}",
            matcher=self.matcher,
            matches=self.matches,
            neighborhood_runs=self.neighborhood_runs,
            rounds=self.round_count,
            elapsed_seconds=self.elapsed_seconds,
            matcher_seconds=self.total_compute_seconds(),
        )


class GridExecutor:
    """Round-based executor for NO-MP, SMP and MMP."""

    def __init__(self, scheme: str = "smp", max_rounds: int = 50,
                 compute_messages_once: bool = True):
        normalized = scheme.lower().replace("_", "-")
        if normalized not in ("no-mp", "nomp", "smp", "mmp"):
            raise ExperimentError(f"unknown grid scheme {scheme!r}")
        self.scheme = "no-mp" if normalized in ("no-mp", "nomp") else normalized
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = max_rounds
        self.compute_messages_once = compute_messages_once

    # -------------------------------------------------------------------- run
    def run(self, matcher: TypeIMatcher, store: EntityStore, cover: Cover) -> GridRunResult:
        if self.scheme == "mmp" and not isinstance(matcher, TypeIIMatcher):
            raise MatcherError("the mmp grid scheme requires a Type-II matcher")
        runner = NeighborhoodRunner(matcher, store, cover)
        started = time.perf_counter()

        matches: Set[EntityPair] = set()
        message_set = MaximalMessageSet()
        probed: Set[str] = set()
        active: Set[str] = set(cover.names())
        rounds: List[List[Task]] = []

        for _ in range(self.max_rounds):
            if not active:
                break
            round_tasks: List[Task] = []
            round_new: Set[EntityPair] = set()
            evidence_snapshot = frozenset(matches)

            # Map phase: every active neighborhood runs against the snapshot.
            for name in sorted(active):
                task_started = time.perf_counter()
                found = runner.run(name, positive=evidence_snapshot)
                new_matches = found - matches - round_new
                round_new |= found - evidence_snapshot
                if self.scheme == "mmp" and (not self.compute_messages_once or name not in probed):
                    probed.add(name)
                    messages = compute_maximal_messages(
                        runner, name, evidence_matches=evidence_snapshot,
                        unconditioned_output=found)
                    message_set.add_all(messages)
                round_tasks.append((name, time.perf_counter() - task_started))

            rounds.append(round_tasks)

            # Reduce phase: merge evidence, promote maximal messages (MMP only).
            matches |= round_new
            if self.scheme == "mmp":
                round_new |= self._promote_messages(matcher, store, matches, message_set)

            if self.scheme == "no-mp":
                active = set()
            else:
                newly_decided = round_new
                if not newly_decided:
                    active = set()
                else:
                    active = set(cover.neighbors_of_pairs(newly_decided))

        elapsed = time.perf_counter() - started
        return GridRunResult(
            scheme=self.scheme,
            matcher=matcher.name,
            matches=frozenset(matches),
            rounds=rounds,
            neighborhood_runs=runner.calls,
            elapsed_seconds=elapsed,
        )

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _promote_messages(matcher: TypeIIMatcher, store: EntityStore,
                          matches: Set[EntityPair],
                          message_set: MaximalMessageSet) -> Set[EntityPair]:
        promoted: Set[EntityPair] = set()
        progress = True
        while progress:
            progress = False
            for message in message_set.messages():
                pending = frozenset(p for p in message if p not in matches)
                if not pending:
                    message_set.discard_pairs(message)
                    continue
                if matcher.score_delta(store, matches, pending) >= -SCORE_TOLERANCE:
                    matches |= pending
                    promoted |= pending
                    message_set.discard_pairs(message)
                    progress = True
        return promoted
