"""Pluggable executors for the map phase of a round.

The grid in :mod:`repro.parallel.grid` performs each round's per-neighborhood
matcher computation through one of these executors:

* :class:`SerialExecutor` — one task after another, in submission order; the
  default and the reference behaviour every other executor must reproduce.
* :class:`ThreadedExecutor` — a thread pool; useful when the black-box matcher
  releases the GIL (e.g. a matcher shelling out to an external process or
  native code) and harmless otherwise.
* :class:`ProcessExecutor` — a process pool; real CPU parallelism for pure
  Python matchers, at the cost of pickling each task's payload to the worker.

All executors consume generic ``(name, callable)`` tasks and return results
keyed by task name, so applications can also drive their own per-neighborhood
work through them.  :class:`ProcessExecutor` additionally requires each
callable (and its return value) to be picklable — a module-level function
wrapped with :func:`functools.partial` over picklable arguments, as
:func:`repro.parallel.tasks.execute_map_task` is used by the grid.

Pool-backed executors create a fresh pool per :meth:`~Executor.map_tasks`
call by default.  To amortise pool start-up across calls (the grid issues one
call per round), use the executor as a context manager::

    with ProcessExecutor(workers=8) as executor:
        GridExecutor(scheme="mmp", executor=executor).run(matcher, store, cover)

Failure semantics are uniform across executors: the first task failure (in
completion order) propagates to the caller, all not-yet-started tasks are
cancelled, and partial results are discarded.  Tasks already running when the
failure surfaces do complete, but their results are dropped.  When that
all-or-nothing contract is too brittle (lossy workers, stragglers), wrap any
executor in :class:`repro.parallel.resilience.ResilientExecutor`, which
supervises tasks individually — retries, deadlines, speculative duplicates,
pool rebuilds — through the :meth:`Executor.submit_task` seam below.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
from typing import Callable, ClassVar, Dict, Optional, Sequence, Tuple, TypeVar

from ..exceptions import ExperimentError
from . import shared as _shared

ResultT = TypeVar("ResultT")
NamedTask = Tuple[str, Callable[[], ResultT]]

#: Spec strings accepted by :func:`make_executor` (and the CLI's ``--executor``).
EXECUTOR_KINDS = ("serial", "threads", "processes")


class Executor(abc.ABC):
    """Executes a batch of named tasks and returns their results by name.

    Executors are context managers: ``with`` keeps any backing worker pool
    alive across :meth:`map_tasks` calls and releases it on exit.  Outside a
    ``with`` block the serial executor needs no resources and the pool-backed
    executors fall back to a one-shot pool per call.
    """

    #: Spec string identifying the executor family (``"serial"``, ...).
    kind: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def map_tasks(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        """Execute all tasks and return their results keyed by task name.

        Raises the first failure (in completion order) after cancelling every
        task that has not started; partial results are discarded.
        """

    def close(self) -> None:
        """Release any backing worker pool (idempotent; no-op by default)."""

    # ----------------------------------------------------------- supervision
    #: Whether :meth:`submit_task` yields real futures this executor's
    #: supervisor can watch individually (pool-backed executors only).
    supports_supervision: ClassVar[bool] = False

    def submit_task(self, name: str,
                    fn: Callable[[], ResultT]) -> Optional["concurrent.futures.Future"]:
        """Submit one named task for future-level supervision.

        Returns ``None`` when the executor cannot hand out futures (the
        serial executor, or a pool-backed executor outside a ``with`` block);
        supervisors then fall back to running tasks inline.
        """
        return None

    def run_inline(self, name: str, fn: Callable[[], ResultT]) -> ResultT:
        """Run one task on the calling thread (the degraded serial path).

        This bypasses any worker pool entirely — it is the last resort the
        resilient executor uses for a task whose pool attempts all failed.
        """
        return fn()

    def rebuild(self) -> None:
        """Recreate the backing pool after it broke (no-op without a pool)."""

    # --------------------------------------------------------------- sharing
    def share(self, key: str, value) -> bool:
        """Broadcast a round-invariant payload to every execution context.

        After a successful ``share``, tasks run by this executor can resolve
        ``value`` via :func:`repro.parallel.shared.get_shared` — in the same
        process for the in-process executors, in each pool worker for the
        process executor (installed once per worker at spawn).  Returns
        ``False`` when the broadcast cannot be guaranteed (e.g. a process
        pool that is already open); callers must then fall back to
        self-contained task payloads.
        """
        _shared.share_local(key, value)
        return True

    def unshare(self, key: str) -> None:
        """Drop a previously shared payload (idempotent)."""
        _shared.unshare_local(key)

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(kind={self.kind!r})"


class SerialExecutor(Executor):
    """Runs tasks one after another, in order (fully deterministic)."""

    kind = "serial"

    def map_tasks(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        return {name: task() for name, task in tasks}


class _PoolExecutor(Executor):
    """Shared submit/collect/cancel logic for pool-backed executors."""

    supports_supervision = True

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: Optional[concurrent.futures.Executor] = None
        self._depth = 0

    @abc.abstractmethod
    def _make_pool(self) -> concurrent.futures.Executor:
        """Create the backing pool with ``self.workers`` workers."""

    def submit_task(self, name: str,
                    fn: Callable[[], ResultT]) -> Optional[concurrent.futures.Future]:
        if self._pool is None:
            return None
        return self._pool.submit(fn)

    def rebuild(self) -> None:
        """Replace a (possibly broken) open pool with a fresh one.

        Futures still queued on the old pool are cancelled; running tasks
        finish but nobody collects them.  A closed executor stays closed.
        For :class:`ProcessExecutor` the fresh pool re-ships every recorded
        broadcast payload through its initializer, so shared snapshots
        survive pool death.
        """
        if self._pool is None:
            return
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()

    def map_tasks(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        if self._pool is not None:
            return self._collect(self._pool, tasks)
        with self._make_pool() as pool:
            return self._collect(pool, tasks)

    @staticmethod
    def _collect(pool: concurrent.futures.Executor,
                 tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        results: Dict[str, ResultT] = {}
        futures = {pool.submit(task): name for name, task in tasks}
        try:
            for future in concurrent.futures.as_completed(futures):
                results[futures[future]] = future.result()
        except BaseException:
            # First failure wins: cancel everything not yet started and
            # propagate.  Running tasks finish but their results are dropped.
            for pending in futures:
                pending.cancel()
            raise
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._depth = 0

    def __enter__(self) -> "Executor":
        if self._pool is None:
            self._pool = self._make_pool()
        self._depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        self._depth -= 1
        if self._depth <= 0:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadedExecutor(_PoolExecutor):
    """Runs tasks in a thread pool of ``workers`` threads.

    Results are collected into a dict keyed by task name.  On the first task
    failure (in completion order) every not-yet-started task is cancelled, the
    partial results are discarded, and the failing task's exception propagates
    to the caller.  Cancellation is best-effort — workers may dequeue a few
    more tasks while the failure surfaces — but a failing round never drains
    the whole remaining batch.
    """

    kind = "threads"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers if workers is not None else (os.cpu_count() or 1))

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PoolExecutor):
    """Runs tasks in a process pool of ``workers`` processes.

    Task callables and their results cross a process boundary, so both must
    be picklable: use module-level functions (optionally wrapped with
    :func:`functools.partial`) over picklable payloads, never lambdas or
    closures.  The grid satisfies this by shipping
    :class:`repro.parallel.tasks.MapTask` payloads.

    Failure semantics match :class:`ThreadedExecutor`: first failure wins,
    outstanding tasks are cancelled, partial results are discarded.
    """

    kind = "processes"

    def __init__(self, workers: Optional[int] = None, mp_context=None):
        super().__init__(workers if workers is not None else (os.cpu_count() or 1))
        self.mp_context = mp_context
        self._shared_payloads: Dict[str, object] = {}

    def share(self, key: str, value) -> bool:
        """Record a broadcast payload delivered to each worker at pool spawn.

        Payloads are shipped through the pool's ``initializer``, so each
        worker unpickles them exactly once.  Sharing into an already-open
        pool is refused (its workers were spawned without the payload);
        callers fall back to self-contained tasks in that case.
        """
        if self._pool is not None:
            return False
        self._shared_payloads[key] = value
        return True

    def unshare(self, key: str) -> None:
        self._shared_payloads.pop(key, None)

    def _make_pool(self) -> concurrent.futures.Executor:
        initializer = None
        initargs = ()
        if self._shared_payloads:
            initializer = _shared.install_shared
            initargs = (dict(self._shared_payloads),)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self.mp_context,
            initializer=initializer, initargs=initargs)


def make_executor(kind: str, workers: Optional[int] = None) -> Executor:
    """Build an executor from a spec string (``serial``/``threads``/``processes``).

    ``workers`` is ignored by the serial executor; the others fall back to
    their own defaults (one worker per CPU) when it is ``None``.  A
    non-positive worker count is a configuration error and raises
    :class:`~repro.exceptions.ExperimentError` rather than leaking a
    ``ValueError`` out of the pool constructor.
    """
    normalized = kind.lower()
    if workers is not None and workers < 1:
        raise ExperimentError(
            f"executor workers must be >= 1, got {workers}")
    if normalized == "serial":
        return SerialExecutor()
    if normalized == "threads":
        return ThreadedExecutor(workers)
    if normalized == "processes":
        return ProcessExecutor(workers)
    raise ExperimentError(
        f"unknown executor kind {kind!r}; known kinds: {EXECUTOR_KINDS}")
