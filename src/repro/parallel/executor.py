"""Local executors for the map phase of a round.

The grid simulation in :mod:`repro.parallel.grid` performs the actual matcher
computation locally.  By default it runs tasks serially; these executors let
the map phase of a round be dispatched to a thread pool instead, which is
useful when the black-box matcher releases the GIL (e.g. a matcher shelling
out to an external process) and harmless otherwise.

The executors work on generic ``(name, callable)`` tasks so they can also be
used directly by applications that want to parallelise their own
per-neighborhood work.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

ResultT = TypeVar("ResultT")
NamedTask = Tuple[str, Callable[[], ResultT]]


class SerialExecutor:
    """Runs tasks one after another (the default, and fully deterministic)."""

    def map_tasks(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        """Execute all tasks and return their results keyed by task name."""
        return {name: task() for name, task in tasks}


class ThreadedExecutor:
    """Runs tasks in a thread pool of ``workers`` threads.

    Results are collected into a dict keyed by task name; exceptions raised by
    a task propagate to the caller (the first one encountered), matching the
    behaviour of the serial executor.
    """

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map_tasks(self, tasks: Sequence[NamedTask]) -> Dict[str, ResultT]:
        results: Dict[str, ResultT] = {}
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(task): name for name, task in tasks}
            for future in concurrent.futures.as_completed(futures):
                results[futures[future]] = future.result()
        return results
