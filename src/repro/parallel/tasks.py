"""Picklable map-phase payloads for the grid executor.

Section 6.3 runs each round's active neighborhoods as independent map tasks.
A :class:`MapTask` is one such unit of work, made self-contained so it can be
executed anywhere — in-process (serial or threaded) or shipped to a worker
process by :class:`repro.parallel.executor.ProcessExecutor`:

* the *restricted* neighborhood store (small — only the neighborhood's
  entities and relations travel, never the global store),
* the evidence snapshot restricted to the neighborhood's entities,
* the neighborhood's result from the previous round (``warm_start``) — the
  per-neighborhood evidence only grows across rounds, so for idempotent +
  monotone matchers that declare ``supports_warm_start`` the old result is
  contained in the new one and seeds the search, which is how later rounds
  only pay for the delta their new evidence causes even under the process
  executor (where the matcher's in-memory caches do not travel),
* the matcher itself (matchers are picklable black boxes; the MLN matcher
  drops its per-store ground-network and result caches when pickled).

:func:`execute_map_task` is the module-level entry point the executors call;
its :class:`MapResult` carries everything the reduce phase needs back: the
neighborhood's matches, any maximal messages (MMP), the measured duration
(which feeds the simulated-grid model) and the matcher-call count.

When the grid runs against a :class:`~repro.datamodel.CompactStore`, tasks
take the :class:`CompactMapTask` form instead: the snapshot and the matcher
are broadcast once per execution context (:mod:`repro.parallel.shared`) and
each task ships only integer member lists and int-encoded evidence —
:func:`execute_compact_map_task` reassembles the neighborhood as a zero-copy
view on the receiving side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from ..core.maximal import compute_maximal_messages
from ..core.messages import MaximalMessage
from ..datamodel import EntityPair, EntityStore, Evidence
from ..kernels.counters import collecting
from ..matchers import TypeIMatcher
from ..obs import registry as obs_registry
from ..obs import trace as obs_trace
from . import shared


@dataclass(frozen=True)
class MapTask:
    """One neighborhood's unit of map-phase work (picklable, self-contained)."""

    name: str
    matcher: TypeIMatcher
    store: EntityStore
    evidence: FrozenSet[EntityPair]
    compute_messages: bool = False
    #: This neighborhood's matches from the previous round (empty on the
    #: first visit); only ever non-empty for ``supports_warm_start`` matchers.
    warm_start: FrozenSet[EntityPair] = frozenset()
    #: Standing negative evidence restricted to this neighborhood (pairs the
    #: matcher must never return).  Empty outside delta-ingestion runs.
    negative: FrozenSet[EntityPair] = frozenset()
    #: Capture the task's spans for re-parenting into the driver's tracer
    #: (set iff the driver has tracing enabled).
    trace: bool = False


@dataclass(frozen=True)
class CompactMapTask:
    """A map task against a broadcast :class:`~repro.datamodel.CompactStore`.

    Instead of a self-contained restricted store, the payload references the
    snapshot (and the matcher) broadcast through
    :meth:`repro.parallel.executor.Executor.share` and carries only the
    neighborhood's *integer* member list plus int-encoded evidence pairs —
    a few hundred bytes where a pickled restricted store is kilobytes.  The
    executing process resolves the snapshot from its local registry and
    restricts it to a cached zero-copy view.
    """

    name: str
    #: Registry key of the broadcast :class:`CompactStore` snapshot.
    snapshot: str
    #: Registry key of the broadcast matcher.
    matcher_key: str
    #: Sorted interned indices of the neighborhood's entities.
    members: Tuple[int, ...]
    #: Int-encoded ``(min_index, max_index)`` positive-evidence pairs.
    evidence: Tuple[Tuple[int, int], ...]
    compute_messages: bool = False
    #: Int-encoded previous-round matches (``supports_warm_start`` only).
    warm_start: Tuple[Tuple[int, int], ...] = ()
    #: Int-encoded standing negative-evidence pairs for this neighborhood.
    negative: Tuple[Tuple[int, int], ...] = ()
    #: Capture the task's spans for re-parenting into the driver's tracer.
    trace: bool = False


@dataclass(frozen=True)
class MapResult:
    """What a map task sends back to the reduce phase (picklable)."""

    name: str
    matches: FrozenSet[EntityPair]
    messages: Tuple[MaximalMessage, ...]
    duration: float
    matcher_calls: int
    #: Batch-kernel work done inside this task, as the compact tuple form of
    #: :class:`~repro.kernels.counters.KernelCounters` (all zeros on the
    #: scalar backend).  A tuple keeps the payload cheap to pickle and
    #: forward-compatible (older results default to zeros).
    kernel_counters: Tuple[int, int, int, int] = (0, 0, 0, 0)
    #: Spans recorded inside the task, as :meth:`TaskCapture.wire` tuples —
    #: empty unless the task was dispatched with ``trace=True``.  The grid's
    #: reduce phase re-parents them under the round span.
    spans: Tuple = ()
    #: Metric updates made inside the task
    #: (:meth:`~repro.obs.registry.RegistryDelta.as_wire`), folded into the
    #: parent's registry by the reduce phase.
    metric_deltas: Tuple = ()


def validate_map_result(name: str, result: object) -> bool:
    """Sanity-check one map result against the task that produced it.

    Used as the :class:`~repro.parallel.resilience.ResilientExecutor`
    validator by the grid: a reply that is not a :class:`MapResult`, or one
    carrying another task's name (a misrouted or corrupted worker reply),
    must not commit — it is treated as a failed attempt and retried.
    """
    return isinstance(result, MapResult) and result.name == name


class _TaskRunner:
    """Duck-typed stand-in for :class:`~repro.core.runner.NeighborhoodRunner`.

    :func:`~repro.core.maximal.compute_maximal_messages` only needs ``run``
    and ``candidate_pairs``; scoping them to the task's single restricted
    store keeps the payload independent of the cover and the global store.
    """

    def __init__(self, matcher: TypeIMatcher, store: EntityStore,
                 warm_start: FrozenSet[EntityPair] = frozenset(),
                 negative: FrozenSet[EntityPair] = frozenset()):
        self.matcher = matcher
        self.store = store
        self.warm_start = warm_start if getattr(
            matcher, "supports_warm_start", False) else frozenset()
        #: Standing negative evidence folded into *every* call (including the
        #: maximal-message probes), so per-call negatives stay identical —
        #: which is what keeps warm starts sound.
        self.negative = negative
        self.calls = 0

    def run(self, name: str, positive: Iterable[EntityPair] = (),
            negative: Iterable[EntityPair] = ()) -> FrozenSet[EntityPair]:
        evidence = Evidence.of(positive, frozenset(negative) | self.negative) \
            .restricted_to(self.store.entity_ids())
        self.calls += 1
        if self.warm_start:
            # Every call of this task carries at least the task's evidence
            # snapshot, which contains the previous round's evidence — so the
            # previous round's result stays a sound seed for the probes too.
            return self.matcher.match(self.store, evidence,
                                      warm_start=self.warm_start)
        return self.matcher.match(self.store, evidence)

    def candidate_pairs(self, name: str) -> FrozenSet[EntityPair]:
        return self.store.similar_pairs()


def execute_map_task(task: MapTask) -> MapResult:
    """Run one neighborhood against its evidence snapshot (any executor).

    Must stay a module-level function: :class:`ProcessExecutor` pickles
    ``functools.partial(execute_map_task, task)`` to its workers.
    """
    started = time.perf_counter()
    with obs_registry.capturing() as metric_delta, \
            obs_trace.task_capture(task.trace) as span_capture, \
            collecting() as kernel_work:
        with obs_trace.span("grid.task", task=task.name,
                            evidence=len(task.evidence)) as task_span:
            runner = _TaskRunner(task.matcher, task.store,
                                 warm_start=task.warm_start,
                                 negative=task.negative)
            found = runner.run(task.name, positive=task.evidence)
            messages: Tuple[MaximalMessage, ...] = ()
            if task.compute_messages:
                messages = tuple(compute_maximal_messages(
                    runner, task.name, evidence_matches=task.evidence,
                    unconditioned_output=found))
            task_span.add_attrs(matches=len(found), calls=runner.calls)
    return MapResult(
        name=task.name,
        matches=found,
        messages=messages,
        duration=time.perf_counter() - started,
        matcher_calls=runner.calls,
        kernel_counters=kernel_work.as_tuple(),
        spans=span_capture.wire() if span_capture is not None else (),
        metric_deltas=metric_delta.as_wire(),
    )


def execute_compact_map_task(task: CompactMapTask) -> MapResult:
    """Run one neighborhood against a broadcast compact snapshot.

    Resolves the snapshot and matcher from the process-local shared registry
    (see :mod:`repro.parallel.shared`), restricts the snapshot to a cached
    zero-copy view of the task's members, decodes the int-encoded evidence,
    and then follows the same path as :func:`execute_map_task`.  Module-level
    for the same pickling reason.
    """
    started = time.perf_counter()
    with obs_registry.capturing() as metric_delta, \
            obs_trace.task_capture(task.trace) as span_capture, \
            collecting() as kernel_work:
        with obs_trace.span("grid.task", task=task.name,
                            evidence=len(task.evidence),
                            compact=True) as task_span:
            snapshot = shared.get_shared(task.snapshot)
            matcher: TypeIMatcher = shared.get_shared(task.matcher_key)
            view = shared.view_for(task.snapshot, task.members)
            evidence = frozenset(snapshot.decode_pairs(task.evidence))
            warm_start = frozenset(snapshot.decode_pairs(task.warm_start))
            negative = frozenset(snapshot.decode_pairs(task.negative))
            runner = _TaskRunner(matcher, view, warm_start=warm_start,
                                 negative=negative)
            found = runner.run(task.name, positive=evidence)
            messages: Tuple[MaximalMessage, ...] = ()
            if task.compute_messages:
                messages = tuple(compute_maximal_messages(
                    runner, task.name, evidence_matches=evidence,
                    unconditioned_output=found))
            task_span.add_attrs(matches=len(found), calls=runner.calls)
    return MapResult(
        name=task.name,
        matches=found,
        messages=messages,
        duration=time.perf_counter() - started,
        matcher_calls=runner.calls,
        kernel_counters=kernel_work.as_tuple(),
        spans=span_capture.wire() if span_capture is not None else (),
        metric_deltas=metric_delta.as_wire(),
    )
