"""Parallel (grid) execution of the framework (Section 6.3)."""

from .executor import SerialExecutor, ThreadedExecutor
from .grid import GridExecutor, GridRunResult
from .partitioner import lpt_partition, makespan, random_partition, skew, total_work

__all__ = [
    "GridExecutor",
    "GridRunResult",
    "SerialExecutor",
    "ThreadedExecutor",
    "lpt_partition",
    "makespan",
    "random_partition",
    "skew",
    "total_work",
]
