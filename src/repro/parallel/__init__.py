"""Parallel (grid) execution of the framework (Section 6.3)."""

from .executor import (
    EXECUTOR_KINDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from .grid import GridExecutor, GridRunResult
from .partitioner import (
    AssignmentSummary,
    lpt_partition,
    makespan,
    random_partition,
    skew,
    summarize,
    total_work,
)
from .resilience import (
    AttemptRecord,
    FaultPolicy,
    ResilientExecutor,
    RoundReport,
    SupervisionHistory,
)
from .tasks import (
    CompactMapTask,
    MapResult,
    MapTask,
    execute_compact_map_task,
    execute_map_task,
    validate_map_result,
)

__all__ = [
    "EXECUTOR_KINDS",
    "AssignmentSummary",
    "AttemptRecord",
    "CompactMapTask",
    "Executor",
    "FaultPolicy",
    "GridExecutor",
    "GridRunResult",
    "MapResult",
    "MapTask",
    "ProcessExecutor",
    "ResilientExecutor",
    "RoundReport",
    "SerialExecutor",
    "SupervisionHistory",
    "ThreadedExecutor",
    "execute_compact_map_task",
    "execute_map_task",
    "validate_map_result",
    "lpt_partition",
    "make_executor",
    "makespan",
    "random_partition",
    "skew",
    "summarize",
    "total_work",
    "validate_map_result",
]
