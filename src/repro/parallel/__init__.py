"""Parallel (grid) execution of the framework (Section 6.3)."""

from .executor import (
    EXECUTOR_KINDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from .grid import GridExecutor, GridRunResult
from .partitioner import (
    AssignmentSummary,
    lpt_partition,
    makespan,
    random_partition,
    skew,
    summarize,
    total_work,
)
from .tasks import (
    CompactMapTask,
    MapResult,
    MapTask,
    execute_compact_map_task,
    execute_map_task,
)

__all__ = [
    "EXECUTOR_KINDS",
    "AssignmentSummary",
    "CompactMapTask",
    "Executor",
    "GridExecutor",
    "GridRunResult",
    "MapResult",
    "MapTask",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "execute_compact_map_task",
    "execute_map_task",
    "lpt_partition",
    "make_executor",
    "makespan",
    "random_partition",
    "skew",
    "summarize",
    "total_work",
]
