"""Incremental world state: counter-maintained scoring over a ground network.

The naive :meth:`~repro.mln.network.GroundNetwork.score`/``delta`` path
rebuilds frozensets and re-tests ``body_pairs <= matches`` for every touching
grounding on every probe.  :class:`WorldState` replaces those subset checks
with one integer per grounding — the number of its query pairs *not yet* in
the world.  Adding a pair decrements the counters of the groundings it touches
(via the network's touching index); a grounding fires exactly when its counter
reaches zero, at which point its weight is folded into a running score.  With
that invariant the hot operations of MAP inference become:

* ``score``        — a stored float, O(1);
* ``delta_single`` — sum the weights of touching groundings whose counter is
  exactly one, O(degree of the pair), with zero set copies;
* ``delta``        — count, per touched grounding, how many of the added pairs
  it is still missing and compare with its counter, O(total degree);
* ``add``          — decrement counters and collect newly-fired weights,
  O(degree of the pair).

This is what makes MMP step 7 "very cheap" at scale: a greedy-pass probe costs
the degree of one pair instead of a pass over every touching grounding's pair
sets.  The naive :class:`~repro.mln.network.GroundNetwork` methods stay as the
reference implementation; the property tests assert that both produce
identical numbers for arbitrary add sequences.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from ..datamodel import EntityPair
from ..kernels import counters
from ..kernels.backend import numpy_or_none
from ..kernels.probes import ProbeIndex
from .network import GroundNetwork

#: Below this many probes the batched path's fixed costs (mirror refresh,
#: array packing) outweigh the per-probe win; fall through to the scalar loop.
_MIN_BATCH = 8


class WorldState:
    """A mutable match set over a ground network with O(degree) score updates.

    The state never *removes* pairs — the greedy collective inference is
    monotone (pairs are only ever added), so counters only ever decrease.
    Hypothetical worlds (group expansion) are handled by :meth:`copy`, which
    keeps the arithmetic exact instead of replaying additions backwards.
    """

    __slots__ = ("_network", "_touching", "_weights", "_missing", "_world",
                 "_score", "_version", "_mirror", "_mirror_version",
                 "_world_mask", "_probe_slot")

    def __init__(self, network: GroundNetwork,
                 initial: Iterable[EntityPair] = ()):
        self._network = network
        # Borrowed read-only views of the network's indexes (shared, never
        # mutated here): pair -> grounding indexes, and per-grounding weights.
        self._touching: Dict[EntityPair, List[int]] = network.touching_map
        self._weights: List[float] = network.grounding_weights
        #: Per grounding: number of its query pairs not yet in the world.
        self._missing: List[int] = list(network.grounding_sizes)
        self._world: Set[EntityPair] = set()
        self._score = 0.0
        # Lazily maintained numpy mirror of the missing counters, refreshed
        # (once per batch of mutations) when delta_batch runs on the numpy
        # kernel backend.  _version counts mutations so staleness is O(1).
        self._version = 0
        self._mirror = None
        self._mirror_version = -1
        # Lazily built numpy mask of ProbeIndex rows currently in the world,
        # kept current by add() so batched probes skip the per-pair set test.
        self._world_mask = None
        self._probe_slot = None
        for pair in initial:
            self.add(pair)

    # ----------------------------------------------------------------- views
    @property
    def network(self) -> GroundNetwork:
        return self._network

    @property
    def score(self) -> float:
        """Total weight of the currently fired groundings (running total)."""
        return self._score

    @property
    def world(self) -> FrozenSet[EntityPair]:
        """The current match set as an immutable snapshot."""
        return frozenset(self._world)

    def __contains__(self, pair: EntityPair) -> bool:
        return pair in self._world

    def __len__(self) -> int:
        return len(self._world)

    def missing_count(self, grounding_index: int) -> int:
        """How many query pairs grounding ``grounding_index`` still lacks."""
        return self._missing[grounding_index]

    # ------------------------------------------------------------- mutation
    def add(self, pair: EntityPair) -> float:
        """Add ``pair`` to the world; return the score gained.

        Pairs already present contribute nothing; pairs outside the candidate
        set touch no groundings and simply join the world (mirroring the naive
        semantics, where such pairs never change any grounding's state).
        """
        if pair in self._world:
            return 0.0
        self._world.add(pair)
        self._version += 1
        if self._world_mask is not None:
            row = self._probe_slot.get(pair)
            if row is not None:
                self._world_mask[row] = True
        gained = 0.0
        missing = self._missing
        weights = self._weights
        for index in self._touching.get(pair, ()):
            remaining = missing[index] - 1
            missing[index] = remaining
            if remaining == 0:
                gained += weights[index]
        self._score += gained
        return gained

    def add_all(self, pairs: Iterable[EntityPair]) -> float:
        """Add every pair; return the total score gained."""
        return sum(self.add(pair) for pair in pairs)

    # --------------------------------------------------------------- probing
    def delta_single(self, pair: EntityPair) -> float:
        """Score change :meth:`add` would cause, without mutating anything.

        A touching grounding newly fires iff ``pair`` is its single missing
        query pair, i.e. its counter is exactly one.
        """
        if pair in self._world:
            return 0.0
        missing = self._missing
        weights = self._weights
        total = 0.0
        for index in self._touching.get(pair, ()):
            if missing[index] == 1:
                total += weights[index]
        return total

    def delta(self, pairs: Iterable[EntityPair]) -> float:
        """Score change of adding all of ``pairs`` at once (non-mutating).

        A touched grounding newly fires iff the additions supply *all* of its
        missing pairs — its counter equals the number of added pairs touching
        it (every addition is outside the world, so each touching addition is
        one of its missing pairs).
        """
        additions = [p for p in set(pairs) if p not in self._world]
        if not additions:
            return 0.0
        if len(additions) == 1:
            return self.delta_single(additions[0])
        hits: Dict[int, int] = {}
        for pair in additions:
            for index in self._touching.get(pair, ()):
                hits[index] = hits.get(index, 0) + 1
        missing = self._missing
        weights = self._weights
        return sum(weights[index] for index, supplied in hits.items()
                   if missing[index] == supplied)

    def delta_batch(self, pairs: Iterable[EntityPair]) -> List[float]:
        """:meth:`delta_single` for a whole worklist in one batched pass.

        On the numpy kernel backend the probes run as one gather/mask/
        segment-sum over the network's cached :class:`ProbeIndex`; each
        pair's weights accumulate in touching-list order, so every returned
        value is bit-identical to the scalar probe.  On the python backend
        (or for tiny batches) this is literally the scalar loop.
        """
        probes = pairs if isinstance(pairs, list) else list(pairs)
        np = numpy_or_none()
        if np is None or len(probes) < _MIN_BATCH:
            return [self.delta_single(pair) for pair in probes]
        index = ProbeIndex.for_network(self._network, np)
        counters.record(batches=1, pairs_scored=len(probes))
        if self._world_mask is None:
            # Built once per state; add() keeps it current from here on.
            slot = index.slot
            mask = np.zeros(len(slot), dtype=bool)
            slot_get = slot.get
            for pair in self._world:
                row = slot_get(pair)
                if row is not None:
                    mask[row] = True
            self._world_mask = mask
            self._probe_slot = slot
        slot_get = index.slot.get
        rows_all = np.fromiter((slot_get(pair, -1) for pair in probes),
                               np.int64, len(probes))
        known = rows_all >= 0
        rows = rows_all[known]
        if len(rows) == 0:
            return [0.0] * len(probes)
        if self._mirror_version != self._version:
            self._mirror = np.asarray(self._missing, dtype=np.int64)
            self._mirror_version = self._version
        values = index.delta_rows(np, rows, self._mirror)
        # Pairs already in the world probe to 0.0, matching delta_single.
        values[self._world_mask[rows]] = 0.0
        if len(rows) == len(probes):
            return values.tolist()
        out = np.zeros(len(probes), dtype=np.float64)
        out[known] = values
        return out.tolist()

    # ------------------------------------------------------------------ copy
    def copy(self) -> "WorldState":
        """An independent hypothetical world sharing the (immutable) indexes."""
        clone = WorldState.__new__(WorldState)
        clone._network = self._network
        clone._touching = self._touching
        clone._weights = self._weights
        clone._missing = list(self._missing)
        clone._world = set(self._world)
        clone._score = self._score
        clone._version = 0
        clone._mirror = None
        clone._mirror_version = -1
        clone._world_mask = None
        clone._probe_slot = None
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorldState(pairs={len(self._world)}, score={self._score:.3f})"
