"""Evidence database: the ground facts a rule set is grounded against.

The database holds, per evidence predicate, the set of ground tuples that are
true (closed-world: everything not listed is false), plus the set of
*candidate query pairs* — the entity pairs for which an ``equals`` ground atom
exists at all.  Restricting the query atoms to candidate pairs is what keeps
the ground network small (the paper's "1.3M matching decisions" are exactly
the candidate pairs produced by the cover) and mirrors how practical MLN
matchers are deployed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..datamodel import COAUTHOR, EntityPair, EntityStore

GroundValue = Union[str, int]
GroundTuple = Tuple[GroundValue, ...]


class EvidenceDatabase:
    """Ground evidence facts plus the candidate ``equals`` pairs."""

    def __init__(self) -> None:
        self._facts: Dict[str, Set[GroundTuple]] = {}
        # Per-predicate, per-position index: position -> value -> tuples.
        self._index: Dict[str, Dict[int, Dict[GroundValue, Set[GroundTuple]]]] = {}
        self._candidates: Set[EntityPair] = set()

    # ----------------------------------------------------------------- facts
    def add_fact(self, predicate: str, *values: GroundValue) -> None:
        """Assert a ground evidence fact."""
        tup = tuple(values)
        facts = self._facts.setdefault(predicate, set())
        if tup in facts:
            return
        facts.add(tup)
        index = self._index.setdefault(predicate, {})
        for position, value in enumerate(tup):
            index.setdefault(position, {}).setdefault(value, set()).add(tup)

    def facts(self, predicate: str) -> FrozenSet[GroundTuple]:
        return frozenset(self._facts.get(predicate, frozenset()))

    def holds(self, predicate: str, *values: GroundValue) -> bool:
        return tuple(values) in self._facts.get(predicate, set())

    def predicates(self) -> List[str]:
        return sorted(self._facts)

    def lookup(self, predicate: str,
               bound: Dict[int, GroundValue]) -> FrozenSet[GroundTuple]:
        """Tuples of ``predicate`` matching the partially-bound positions.

        ``bound`` maps argument position → required value.  With no bound
        positions every tuple is returned; with bound positions the smallest
        per-position index is intersected, which keeps nested-loop joins fast.
        """
        all_facts = self._facts.get(predicate)
        if not all_facts:
            return frozenset()
        if not bound:
            return frozenset(all_facts)
        candidate_sets: List[Set[GroundTuple]] = []
        index = self._index.get(predicate, {})
        for position, value in bound.items():
            bucket = index.get(position, {}).get(value)
            if not bucket:
                return frozenset()
            candidate_sets.append(bucket)
        candidate_sets.sort(key=len)
        result = set(candidate_sets[0])
        for other in candidate_sets[1:]:
            result &= other
            if not result:
                break
        return frozenset(result)

    # ------------------------------------------------------------ candidates
    def add_candidate(self, pair: EntityPair) -> None:
        """Register an entity pair as a possible match decision."""
        self._candidates.add(pair)

    def candidates(self) -> FrozenSet[EntityPair]:
        return frozenset(self._candidates)

    def is_candidate(self, pair: EntityPair) -> bool:
        return pair in self._candidates

    # ----------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        return {
            "predicates": len(self._facts),
            "facts": sum(len(f) for f in self._facts.values()),
            "candidate_pairs": len(self._candidates),
        }


def database_from_store(store: EntityStore,
                        coauthor_relation: str = COAUTHOR,
                        extra_relations: Sequence[str] = (),
                        include_levelless_similar: bool = True) -> EvidenceDatabase:
    """Build an :class:`EvidenceDatabase` from an :class:`EntityStore`.

    * Every similarity edge of the store with level ``s`` produces the facts
      ``similar(a, b, s)`` and ``similar(b, a, s)`` (rules treat the predicate
      as symmetric by grounding both orders), plus, when
      ``include_levelless_similar`` is set, a level-free ``similar(a, b)``
      fact used by the Section-2 example rules.
    * The coauthor relation (and any ``extra_relations``) produce symmetric
      binary facts under their relation name.
    * Every similarity edge also registers its pair as a candidate match.
    """
    db = EvidenceDatabase()
    for edge in store.similarity_edges():
        a, b = edge.pair.first, edge.pair.second
        db.add_fact("similar", a, b, edge.level)
        db.add_fact("similar", b, a, edge.level)
        if include_levelless_similar:
            db.add_fact("similar", a, b)
            db.add_fact("similar", b, a)
        db.add_candidate(edge.pair)

    relation_names = [coauthor_relation, *extra_relations]
    for name in relation_names:
        if not store.has_relation(name):
            continue
        relation = store.relation(name)
        for tup in relation:
            db.add_fact(name, *tup)
            if relation.arity == 2:
                db.add_fact(name, tup[1], tup[0])
    return db
