"""Grounding: instantiate first-order rules against an evidence database.

A *grounding* of a rule binds every variable to an entity id (or constant)
such that all *evidence* atoms in the body hold in the database.  What is left
of the grounding is its query part:

* ``head_pair`` — the ``equals`` pair the rule concludes,
* ``body_pairs`` — the ``equals`` pairs the body still requires.

Scoring follows the paper's exposition (Section 2.1): a ground rule
*fires* — and contributes its weight — exactly when its remaining body pairs
and its head pair are all in the current match set.  Reflexive ``equals``
atoms (same entity on both sides) are always true and are dropped;
groundings whose head or body requires a pair that is not a candidate match
can never fire and are skipped.  Groundings that map to the same
``(rule, head_pair, body_pairs)`` triple are de-duplicated, which matches the
paper's arithmetic in the worked example (each supporting coauthor pair is
counted once).

This "fires" semantics is supermodular and monotone because all the mass a
match set can gain or lose by adding one more pair comes from groundings in
which that pair participates positively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datamodel import EntityPair
from ..exceptions import InferenceError
from .database import EvidenceDatabase, GroundTuple, GroundValue
from .logic import Atom, Constant, Rule, RuleSet, Variable


@dataclass(frozen=True)
class GroundRule:
    """A grounded rule: fires when ``body_pairs ⊆ M`` and ``head_pair ∈ M``."""

    rule_name: str
    weight: float
    head_pair: EntityPair
    body_pairs: FrozenSet[EntityPair]

    def fires(self, matches: FrozenSet[EntityPair]) -> bool:
        """Whether the grounding contributes its weight under match set ``matches``."""
        return self.head_pair in matches and self.body_pairs <= matches

    def pairs(self) -> FrozenSet[EntityPair]:
        """All query pairs this grounding depends on."""
        return self.body_pairs | {self.head_pair}


class Grounder:
    """Grounds a :class:`RuleSet` against an :class:`EvidenceDatabase`."""

    def __init__(self, rules: RuleSet):
        self.rules = rules

    # ------------------------------------------------------------- bindings
    @staticmethod
    def _extend_bindings(bindings: List[Dict[Variable, GroundValue]],
                         atom_: Atom,
                         database: EvidenceDatabase) -> List[Dict[Variable, GroundValue]]:
        """Join one evidence atom into the current set of partial bindings."""
        extended: List[Dict[Variable, GroundValue]] = []
        arity = len(atom_.terms)
        for binding in bindings:
            bound_positions: Dict[int, GroundValue] = {}
            for position, term in enumerate(atom_.terms):
                if isinstance(term, Constant):
                    bound_positions[position] = term.value
                elif term in binding:
                    bound_positions[position] = binding[term]
            for fact in database.lookup(atom_.predicate, bound_positions):
                if len(fact) != arity:
                    continue
                new_binding = dict(binding)
                consistent = True
                for position, term in enumerate(atom_.terms):
                    value = fact[position]
                    if isinstance(term, Constant):
                        if term.value != value:
                            consistent = False
                            break
                    else:
                        existing = new_binding.get(term)
                        if existing is None:
                            new_binding[term] = value
                        elif existing != value:
                            consistent = False
                            break
                if consistent:
                    extended.append(new_binding)
        return extended

    @staticmethod
    def _query_pair(atom_: Atom, binding: Dict[Variable, GroundValue]) -> Optional[EntityPair]:
        """Ground a query atom to an :class:`EntityPair`, or ``None`` when reflexive."""
        values = atom_.substitute(binding)
        if len(values) != 2:
            raise InferenceError(
                f"query atom {atom_!r} must be binary, got arity {len(values)}"
            )
        first, second = str(values[0]), str(values[1])
        if first == second:
            return None
        return EntityPair.of(first, second)

    # ------------------------------------------------------------- grounding
    def ground_rule(self, rule: Rule, database: EvidenceDatabase) -> List[GroundRule]:
        """All groundings of ``rule`` that can possibly fire."""
        bindings: List[Dict[Variable, GroundValue]] = [{}]
        for evidence_atom in rule.evidence_atoms():
            bindings = self._extend_bindings(bindings, evidence_atom, database)
            if not bindings:
                return []

        groundings: List[GroundRule] = []
        seen: Set[Tuple[EntityPair, FrozenSet[EntityPair]]] = set()
        for binding in bindings:
            head_pair = self._query_pair(rule.head, binding)
            if head_pair is None:
                # Reflexive head: always satisfied, constant contribution.
                continue
            if not database.is_candidate(head_pair):
                # The head can never be matched: the grounding can never fire.
                continue
            body_pairs: Set[EntityPair] = set()
            possible = True
            for query_atom in rule.query_atoms():
                pair = self._query_pair(query_atom, binding)
                if pair is None:
                    continue  # reflexive equals in the body is always true
                if not database.is_candidate(pair):
                    possible = False
                    break
                if pair == head_pair:
                    continue  # trivially satisfied together with the head
                body_pairs.add(pair)
            if not possible:
                continue
            key = (head_pair, frozenset(body_pairs))
            if key in seen:
                continue
            seen.add(key)
            groundings.append(GroundRule(
                rule_name=rule.name,
                weight=rule.weight,
                head_pair=head_pair,
                body_pairs=frozenset(body_pairs),
            ))
        return groundings

    def ground(self, database: EvidenceDatabase) -> List[GroundRule]:
        """Ground every rule of the rule set."""
        groundings: List[GroundRule] = []
        for rule in self.rules:
            groundings.extend(self.ground_rule(rule, database))
        return groundings
