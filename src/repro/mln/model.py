"""Markov Logic Network facade.

:class:`MarkovLogicNetwork` ties together the rule language, the evidence
database builder, the grounder, the ground network and MAP inference behind a
small API:

* :meth:`ground` — build the ground network for an entity store,
* :meth:`map_state` — MAP match set given evidence,
* :meth:`score` / :meth:`score_delta` — world scoring for MMP step 7.

This is the object the :class:`repro.matchers.mln_matcher.MLNMatcher` wraps
into the framework's black-box matcher protocol.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence

from ..datamodel import EntityPair, EntityStore
from .database import EvidenceDatabase, database_from_store
from .grounding import Grounder, GroundRule
from .inference import GreedyCollectiveInference, InferenceResult, exhaustive_map
from .logic import RuleSet, paper_author_rules
from .network import GroundNetwork


class MarkovLogicNetwork:
    """A weighted first-order rule program with grounding and MAP inference."""

    def __init__(self, rules: Optional[RuleSet] = None,
                 inference: Optional[GreedyCollectiveInference] = None,
                 coauthor_relation: str = "coauthor",
                 extra_relations: Sequence[str] = ()):
        self.rules = rules if rules is not None else paper_author_rules()
        self.inference = inference if inference is not None else GreedyCollectiveInference()
        self.coauthor_relation = coauthor_relation
        self.extra_relations = tuple(extra_relations)
        self._grounder = Grounder(self.rules)

    # ------------------------------------------------------------- grounding
    def build_database(self, store: EntityStore) -> EvidenceDatabase:
        """Build the evidence database for ``store`` using this MLN's relations."""
        return database_from_store(
            store,
            coauthor_relation=self.coauthor_relation,
            extra_relations=self.extra_relations,
        )

    def ground(self, store: EntityStore) -> GroundNetwork:
        """Ground the rule program against ``store``."""
        database = self.build_database(store)
        groundings = self._grounder.ground(database)
        return GroundNetwork(groundings, database.candidates())

    # ------------------------------------------------------------- inference
    def map_state(self, store: EntityStore,
                  positive: Iterable[EntityPair] = (),
                  negative: Iterable[EntityPair] = (),
                  network: Optional[GroundNetwork] = None) -> InferenceResult:
        """MAP match set of ``store`` under the given evidence."""
        net = network if network is not None else self.ground(store)
        return self.inference.infer(net, fixed_true=positive, fixed_false=negative)

    def exhaustive_map_state(self, store: EntityStore,
                             positive: Iterable[EntityPair] = (),
                             negative: Iterable[EntityPair] = (),
                             max_candidates: int = 18) -> InferenceResult:
        """Exact MAP by enumeration — only for tiny instances (tests, examples)."""
        net = self.ground(store)
        return exhaustive_map(net, fixed_true=positive, fixed_false=negative,
                              max_candidates=max_candidates)

    # --------------------------------------------------------------- scoring
    def score(self, store: EntityStore, matches: Iterable[EntityPair],
              network: Optional[GroundNetwork] = None) -> float:
        """Score (unnormalised log-probability) of a match set over ``store``."""
        net = network if network is not None else self.ground(store)
        return net.score(matches)

    def score_delta(self, store: EntityStore, base: Iterable[EntityPair],
                    added: Iterable[EntityPair],
                    network: Optional[GroundNetwork] = None) -> float:
        """Score change of adding ``added`` on top of ``base``.

        This is the quantity MMP's step 7 compares against zero:
        ``P(M+ ∪ M) ≥ P(M+)`` holds iff the delta is ≥ 0.
        """
        net = network if network is not None else self.ground(store)
        return net.delta(added, base)

    # ----------------------------------------------------------------- admin
    def weights(self) -> Dict[str, float]:
        return self.rules.weights()

    def with_weights(self, weights: Dict[str, float]) -> "MarkovLogicNetwork":
        """A copy of this MLN with new rule weights (used after learning)."""
        return MarkovLogicNetwork(
            rules=self.rules.with_weights(weights),
            inference=self.inference,
            coauthor_relation=self.coauthor_relation,
            extra_relations=self.extra_relations,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MarkovLogicNetwork(rules={self.rules.names()})"
