"""Ground network: scoring worlds and computing incremental deltas.

A :class:`GroundNetwork` holds the ground rules produced by the
:class:`~repro.mln.grounding.Grounder` together with per-pair indexes so that
the score change caused by adding one pair (or a group of pairs) to a match
set can be computed by touching only the groundings that mention those pairs.
This is the property the paper relies on for MMP step 7: "computing PE(S) for
a specific S is very cheap using the parameters of the model".

The *score* of a match set M is the total weight of the ground rules that fire
under M; the corresponding (unnormalised) probability is ``exp(score)``, so
score comparisons are probability comparisons.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datamodel import EntityPair
from .grounding import GroundRule


class GroundNetwork:
    """An indexed collection of ground rules over a set of candidate pairs."""

    def __init__(self, groundings: Iterable[GroundRule],
                 candidates: Iterable[EntityPair]):
        self._groundings: List[GroundRule] = list(groundings)
        self._candidates: FrozenSet[EntityPair] = frozenset(candidates)
        # pair -> indexes of groundings in which the pair participates.
        self._touching: Dict[EntityPair, List[int]] = {}
        for index, grounding in enumerate(self._groundings):
            for pair in grounding.pairs():
                self._touching.setdefault(pair, []).append(index)

    # ---------------------------------------------------------------- access
    @property
    def candidates(self) -> FrozenSet[EntityPair]:
        """Pairs over which a match decision exists."""
        return self._candidates

    @property
    def groundings(self) -> Sequence[GroundRule]:
        return tuple(self._groundings)

    def groundings_touching(self, pair: EntityPair) -> List[GroundRule]:
        return [self._groundings[i] for i in self._touching.get(pair, ())]

    def size(self) -> Dict[str, int]:
        return {"groundings": len(self._groundings), "candidates": len(self._candidates)}

    # --------------------------------------------------------------- scoring
    def score(self, matches: Iterable[EntityPair]) -> float:
        """Total weight of the groundings that fire under ``matches``."""
        world = frozenset(matches)
        return sum(g.weight for g in self._groundings if g.fires(world))

    def log_probability(self, matches: Iterable[EntityPair]) -> float:
        """Unnormalised log-probability of ``matches`` (identical to :meth:`score`).

        The normalisation constant is shared by every match set over the same
        entities, so comparisons of log-probabilities reduce to comparisons of
        scores — which is all the framework ever needs.
        """
        return self.score(matches)

    def delta(self, added: Iterable[EntityPair], matches: Iterable[EntityPair]) -> float:
        """Score change from adding ``added`` to ``matches``.

        Only groundings touching one of the added pairs can change state, so
        the computation is local.  Pairs already in ``matches`` contribute
        nothing.
        """
        base = frozenset(matches)
        additions = frozenset(added) - base
        if not additions:
            return 0.0
        extended = base | additions
        touched_indexes: Set[int] = set()
        for pair in additions:
            touched_indexes.update(self._touching.get(pair, ()))
        change = 0.0
        for index in touched_indexes:
            grounding = self._groundings[index]
            fired_before = grounding.fires(base)
            fired_after = grounding.fires(extended)
            if fired_after and not fired_before:
                change += grounding.weight
            elif fired_before and not fired_after:  # pragma: no cover - cannot happen for additions
                change -= grounding.weight
        return change

    def delta_single(self, pair: EntityPair, matches: Iterable[EntityPair]) -> float:
        """Score change from adding a single pair."""
        return self.delta((pair,), matches)

    def fired(self, matches: Iterable[EntityPair]) -> List[GroundRule]:
        """The groundings that fire under ``matches`` (useful for explanations)."""
        world = frozenset(matches)
        return [g for g in self._groundings if g.fires(world)]

    def explain(self, matches: Iterable[EntityPair]) -> Dict[str, float]:
        """Total fired weight per rule name — a human-readable score breakdown."""
        breakdown: Dict[str, float] = {}
        for grounding in self.fired(matches):
            breakdown[grounding.rule_name] = breakdown.get(grounding.rule_name, 0.0) + grounding.weight
        return breakdown

    # ------------------------------------------------------------- structure
    def support_graph(self) -> Dict[EntityPair, Set[EntityPair]]:
        """Undirected graph connecting pairs that co-occur in some grounding.

        Used by tests and by the maximal-message diagnostics: pairs in
        different connected components can never influence each other.
        """
        graph: Dict[EntityPair, Set[EntityPair]] = {pair: set() for pair in self._candidates}
        for grounding in self._groundings:
            pairs = sorted(grounding.pairs())
            for i, first in enumerate(pairs):
                for second in pairs[i + 1:]:
                    graph.setdefault(first, set()).add(second)
                    graph.setdefault(second, set()).add(first)
        return graph
