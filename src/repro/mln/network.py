"""Ground network: scoring worlds and computing incremental deltas.

A :class:`GroundNetwork` holds the ground rules produced by the
:class:`~repro.mln.grounding.Grounder` together with per-pair indexes so that
the score change caused by adding one pair (or a group of pairs) to a match
set can be computed by touching only the groundings that mention those pairs.
This is the property the paper relies on for MMP step 7: "computing PE(S) for
a specific S is very cheap using the parameters of the model".

The *score* of a match set M is the total weight of the ground rules that fire
under M; the corresponding (unnormalised) probability is ``exp(score)``, so
score comparisons are probability comparisons.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datamodel import EntityPair
from .grounding import GroundRule


class GroundNetwork:
    """An indexed collection of ground rules over a set of candidate pairs."""

    def __init__(self, groundings: Iterable[GroundRule],
                 candidates: Iterable[EntityPair]):
        self._groundings: List[GroundRule] = list(groundings)
        self._candidates: FrozenSet[EntityPair] = frozenset(candidates)
        # Flat per-grounding views consumed by the incremental WorldState:
        # weights, query-pair sets and their sizes, indexed like _groundings.
        self._weights: List[float] = [g.weight for g in self._groundings]
        self._grounding_pairs: List[FrozenSet[EntityPair]] = [
            g.pairs() for g in self._groundings
        ]
        self._sizes: List[int] = [len(pairs) for pairs in self._grounding_pairs]
        # pair -> indexes of groundings in which the pair participates.
        self._touching: Dict[EntityPair, List[int]] = {}
        for index, pairs in enumerate(self._grounding_pairs):
            for pair in pairs:
                self._touching.setdefault(pair, []).append(index)
        # pair -> pairs sharing a grounding with it (lazily built worklist
        # adjacency for the incremental inference engine).
        self._affected_cache: Dict[EntityPair, FrozenSet[EntityPair]] = {}

    # ---------------------------------------------------------------- access
    @property
    def candidates(self) -> FrozenSet[EntityPair]:
        """Pairs over which a match decision exists."""
        return self._candidates

    @property
    def groundings(self) -> Sequence[GroundRule]:
        return tuple(self._groundings)

    def groundings_touching(self, pair: EntityPair) -> List[GroundRule]:
        return [self._groundings[i] for i in self._touching.get(pair, ())]

    # ------------------------------------------------- incremental-state views
    # Read-only structural views consumed by repro.mln.state.WorldState; the
    # returned containers are shared, never copied — callers must not mutate.
    @property
    def touching_map(self) -> Dict[EntityPair, List[int]]:
        """pair -> indexes (into :attr:`groundings`) of groundings touching it."""
        return self._touching

    @property
    def grounding_weights(self) -> List[float]:
        """Per-grounding weights, indexed like :attr:`groundings`."""
        return self._weights

    @property
    def grounding_sizes(self) -> List[int]:
        """Per-grounding count of distinct query pairs (head + body)."""
        return self._sizes

    def touching_indexes(self, pair: EntityPair) -> Sequence[int]:
        """Indexes of the groundings in which ``pair`` participates."""
        return self._touching.get(pair, ())

    def affected_pairs(self, pair: EntityPair) -> FrozenSet[EntityPair]:
        """Pairs sharing at least one grounding with ``pair`` (cached).

        Adding ``pair`` to a world can only change the delta of these pairs —
        this is the worklist edge relation of the incremental greedy search.
        """
        cached = self._affected_cache.get(pair)
        if cached is not None:
            return cached
        affected: Set[EntityPair] = set()
        for index in self._touching.get(pair, ()):
            affected.update(self._grounding_pairs[index])
        affected.discard(pair)
        result = frozenset(affected)
        self._affected_cache[pair] = result
        return result

    def size(self) -> Dict[str, int]:
        return {"groundings": len(self._groundings), "candidates": len(self._candidates)}

    # --------------------------------------------------------------- scoring
    def score(self, matches: Iterable[EntityPair]) -> float:
        """Total weight of the groundings that fire under ``matches``."""
        world = frozenset(matches)
        return sum(g.weight for g in self._groundings if g.fires(world))

    def log_probability(self, matches: Iterable[EntityPair]) -> float:
        """Unnormalised log-probability of ``matches`` (identical to :meth:`score`).

        The normalisation constant is shared by every match set over the same
        entities, so comparisons of log-probabilities reduce to comparisons of
        scores — which is all the framework ever needs.
        """
        return self.score(matches)

    def delta(self, added: Iterable[EntityPair], matches: Iterable[EntityPair]) -> float:
        """Score change from adding ``added`` to ``matches``.

        Only groundings touching one of the added pairs can change state, so
        the computation is local.  Pairs already in ``matches`` contribute
        nothing.
        """
        base = frozenset(matches)
        additions = frozenset(added) - base
        if not additions:
            return 0.0
        extended = base | additions
        touched_indexes: Set[int] = set()
        for pair in additions:
            touched_indexes.update(self._touching.get(pair, ()))
        change = 0.0
        for index in touched_indexes:
            grounding = self._groundings[index]
            fired_before = grounding.fires(base)
            fired_after = grounding.fires(extended)
            if fired_after and not fired_before:
                change += grounding.weight
            elif fired_before and not fired_after:  # pragma: no cover - cannot happen for additions
                change -= grounding.weight
        return change

    def delta_single(self, pair: EntityPair, matches: Iterable[EntityPair]) -> float:
        """Score change from adding a single pair."""
        return self.delta((pair,), matches)

    def fired(self, matches: Iterable[EntityPair]) -> List[GroundRule]:
        """The groundings that fire under ``matches`` (useful for explanations)."""
        world = frozenset(matches)
        return [g for g in self._groundings if g.fires(world)]

    def explain(self, matches: Iterable[EntityPair]) -> Dict[str, float]:
        """Total fired weight per rule name — a human-readable score breakdown."""
        breakdown: Dict[str, float] = {}
        for grounding in self.fired(matches):
            breakdown[grounding.rule_name] = breakdown.get(grounding.rule_name, 0.0) + grounding.weight
        return breakdown

    # ------------------------------------------------------------- structure
    def support_graph(self) -> Dict[EntityPair, Set[EntityPair]]:
        """Undirected graph connecting pairs that co-occur in some grounding.

        Used by tests and by the maximal-message diagnostics: pairs in
        different connected components can never influence each other.
        """
        graph: Dict[EntityPair, Set[EntityPair]] = {pair: set() for pair in self._candidates}
        for grounding in self._groundings:
            pairs = sorted(grounding.pairs())
            for i, first in enumerate(pairs):
                for second in pairs[i + 1:]:
                    graph.setdefault(first, set()).add(second)
                    graph.setdefault(second, set()).add(first)
        return graph
