"""Markov Logic Network substrate used by the MLN collective matcher."""

from .database import EvidenceDatabase, database_from_store
from .grounding import Grounder, GroundRule
from .inference import (
    GreedyCollectiveInference,
    InferenceResult,
    SCORE_TOLERANCE,
    exhaustive_map,
)
from .learning import LearningReport, TrainingExample, VotedPerceptronLearner
from .logic import (
    Atom,
    Constant,
    PAPER_WEIGHTS,
    QUERY_PREDICATE,
    Rule,
    RuleSet,
    Variable,
    atom,
    const,
    paper_author_rules,
    section2_example_rules,
    var,
)
from .model import MarkovLogicNetwork
from .network import GroundNetwork
from .state import WorldState

__all__ = [
    "Atom",
    "Constant",
    "EvidenceDatabase",
    "GreedyCollectiveInference",
    "GroundNetwork",
    "GroundRule",
    "Grounder",
    "InferenceResult",
    "LearningReport",
    "MarkovLogicNetwork",
    "PAPER_WEIGHTS",
    "QUERY_PREDICATE",
    "Rule",
    "RuleSet",
    "SCORE_TOLERANCE",
    "TrainingExample",
    "Variable",
    "VotedPerceptronLearner",
    "WorldState",
    "atom",
    "const",
    "database_from_store",
    "exhaustive_map",
    "paper_author_rules",
    "section2_example_rules",
    "var",
]
