"""Weight learning for the MLN matcher.

The paper uses Alchemy to learn the rule weights from labelled training data
(Appendix B reports the learnt values).  This module provides a compact
replacement: a *voted structured perceptron*.  In each epoch the current MAP
state is computed on a training neighborhood and the weight of every rule is
nudged by the difference between the number of its groundings that fire under
the ground truth and the number that fire under the prediction.  Averaging the
per-epoch weights (the "voted" part) stabilises the estimate.

The learner is deliberately simple — the reproduction experiments default to
the paper's published weights — but it closes the loop for users who bring
their own rules and labelled data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..datamodel import EntityPair, EntityStore, MatchSet
from .inference import GreedyCollectiveInference
from .logic import RuleSet
from .model import MarkovLogicNetwork
from .network import GroundNetwork


@dataclass
class TrainingExample:
    """One labelled training instance: a (small) entity store and its true matches."""

    store: EntityStore
    true_matches: FrozenSet[EntityPair]

    @classmethod
    def from_match_set(cls, store: EntityStore, matches: MatchSet) -> "TrainingExample":
        return cls(store=store, true_matches=frozenset(matches.pairs))


@dataclass
class LearningReport:
    """Diagnostics produced by a learning run."""

    epochs: int
    weight_history: List[Dict[str, float]] = field(default_factory=list)
    training_errors: List[int] = field(default_factory=list)

    @property
    def final_weights(self) -> Dict[str, float]:
        return self.weight_history[-1] if self.weight_history else {}


def _fired_counts(network: GroundNetwork, matches: FrozenSet[EntityPair]) -> Dict[str, int]:
    """Number of fired groundings per rule name under ``matches``."""
    counts: Dict[str, int] = {}
    for grounding in network.fired(matches):
        counts[grounding.rule_name] = counts.get(grounding.rule_name, 0) + 1
    return counts


class VotedPerceptronLearner:
    """Structured perceptron with weight averaging."""

    def __init__(self, learning_rate: float = 0.1, epochs: int = 10,
                 inference: Optional[GreedyCollectiveInference] = None):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.inference = inference if inference is not None else GreedyCollectiveInference()

    def learn(self, rules: RuleSet, examples: Sequence[TrainingExample],
              initial_weights: Optional[Dict[str, float]] = None
              ) -> Tuple[Dict[str, float], LearningReport]:
        """Learn weights for ``rules`` from labelled ``examples``.

        Returns the averaged weights and a :class:`LearningReport`.
        """
        if not examples:
            raise ValueError("at least one training example is required")
        weights: Dict[str, float] = dict(initial_weights or rules.weights())
        accumulated: Dict[str, float] = {name: 0.0 for name in weights}
        report = LearningReport(epochs=self.epochs)

        # Ground each training store once per epoch with the current weights.
        for _ in range(self.epochs):
            epoch_errors = 0
            for example in examples:
                mln = MarkovLogicNetwork(rules=rules.with_weights(weights),
                                         inference=self.inference)
                network = mln.ground(example.store)
                predicted = self.inference.infer(network).matches
                truth = example.true_matches & network.candidates
                if predicted != truth:
                    epoch_errors += len(predicted.symmetric_difference(truth))
                    true_counts = _fired_counts(network, frozenset(truth))
                    predicted_counts = _fired_counts(network, predicted)
                    for name in weights:
                        gradient = true_counts.get(name, 0) - predicted_counts.get(name, 0)
                        weights[name] += self.learning_rate * gradient
            for name, value in weights.items():
                accumulated[name] += value
            report.weight_history.append(dict(weights))
            report.training_errors.append(epoch_errors)

        averaged = {name: value / self.epochs for name, value in accumulated.items()}
        return averaged, report
