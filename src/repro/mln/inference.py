"""MAP inference over a ground network.

The MAP (maximum a-posteriori) state of the ground network is the match set
with the highest score.  Two inference procedures are provided:

* :class:`GreedyCollectiveInference` — the production procedure.  It combines
  greedy single-pair moves with *collective chain moves*: a pair whose own
  delta is non-positive is tentatively added, the positive-delta pairs it
  entails are pulled in, and the whole group is accepted only when its joint
  delta is positive.  This reproduces the collective behaviour of Section 2.1
  (the (a1,a2), (b2,b3), (c2,c3) chain is only worth matching as a whole) and,
  because the network is supermodular, never *removes* pairs — which keeps the
  resulting matcher monotone.

  By default the search runs on the **incremental counting engine**
  (:class:`~repro.mln.state.WorldState`): every probe costs the degree of one
  pair instead of a frozenset rebuild per touching grounding, and greedy
  progress propagates through a worklist seeded from the touching index —
  supermodularity guarantees only pairs sharing a grounding with a newly
  added pair can flip from non-positive to positive delta.  ``use_counting=
  False`` selects the naive reference path (full rescans against
  :meth:`GroundNetwork.delta`), kept verbatim so parity can always be checked.

  ``infer(..., warm_start=...)`` seeds the search with a previous result.
  This is sound whenever the warm-start set is contained in the cold answer —
  in particular when it is the matcher's own output under a subset of the
  current evidence (idempotence + monotonicity, Definition 4): the greedy
  closure from any subset of the fixpoint reaches the same fixpoint, so later
  message-passing rounds only pay for the delta their new evidence causes.

* :func:`exhaustive_map` — brute force over all subsets, only usable for tiny
  candidate sets; tests use it as the reference the greedy procedure is
  compared against.

Both respect evidence: pairs in ``fixed_true`` are clamped in, pairs in
``fixed_false`` are clamped out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import combinations
from typing import Deque, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datamodel import EntityPair
from ..exceptions import InferenceError
from ..obs import registry as obs_registry
from ..obs.trace import span
from .network import GroundNetwork
from .state import WorldState

#: Numerical tolerance when comparing score deltas to zero.
SCORE_TOLERANCE = 1e-9

_INFERENCES = obs_registry.counter(
    "mln_inferences_total", "MAP inference runs", labels=("engine",))
_ITERATIONS = obs_registry.counter(
    "mln_inference_iterations_total", "Outer passes across inference runs")


@dataclass(frozen=True)
class InferenceResult:
    """Output of a MAP inference run."""

    matches: FrozenSet[EntityPair]
    score: float
    iterations: int


class GreedyCollectiveInference:
    """Greedy + collective-chain MAP search.

    Parameters
    ----------
    max_iterations:
        Safety bound on the number of outer passes; the search normally
        converges long before this.
    enable_group_moves:
        When disabled only single-pair greedy moves are made — this is the
        behaviour of a purely iterative matcher and is exposed so the effect
        of collective moves can be measured (ablation benches).
    accept_zero_gain_groups:
        When enabled a group whose joint delta is exactly zero is still
        accepted, implementing the Type-II tie-break "prefer the largest most
        likely set".  Disabled by default: strict improvement keeps the MAP
        state unique on generic weights.
    use_counting:
        When enabled (default) the search runs on the incremental
        :class:`~repro.mln.state.WorldState` engine; when disabled it runs the
        naive reference implementation against the network's set-based
        ``score``/``delta``.  Both produce identical match sets on
        well-behaved (supermodular) networks — asserted by the parity tests.
    """

    #: Callers may pass ``warm_start`` to :meth:`infer` (feature-detection
    #: hook for matchers wrapping a custom inference object).
    supports_warm_start = True

    def __init__(self, max_iterations: int = 1000, enable_group_moves: bool = True,
                 accept_zero_gain_groups: bool = False, use_counting: bool = True):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.enable_group_moves = enable_group_moves
        self.accept_zero_gain_groups = accept_zero_gain_groups
        self.use_counting = use_counting

    # ------------------------------------------------------------------ api
    def infer(self, network: GroundNetwork,
              fixed_true: Iterable[EntityPair] = (),
              fixed_false: Iterable[EntityPair] = (),
              warm_start: Optional[Iterable[EntityPair]] = ()) -> InferenceResult:
        """Return (an approximation of) the MAP match set of ``network``.

        ``warm_start`` pairs are seeded into the initial world (restricted to
        candidate pairs, minus ``fixed_false``).  Pass the previous round's
        matches when re-running with grown evidence: the search then only pays
        for the delta the new evidence causes.
        """
        clamped_true = frozenset(fixed_true)
        clamped_false = frozenset(fixed_false) - clamped_true
        seed = set(clamped_true)
        if warm_start:
            seed |= (frozenset(warm_start) & network.candidates) - clamped_false
        if self.use_counting:
            return self._infer_counting(network, seed, clamped_false)
        return self._infer_naive(network, seed, clamped_false)

    # ------------------------------------------------------ counting engine
    def _infer_counting(self, network: GroundNetwork, seed: Set[EntityPair],
                        clamped_false: FrozenSet[EntityPair]) -> InferenceResult:
        with span("mln.infer", engine="counting",
                  candidates=len(network.candidates)) as infer_span:
            state = WorldState(network, initial=seed)
            free: Set[EntityPair] = {
                pair for pair in network.candidates
                if pair not in state and pair not in clamped_false
            }

            iterations = 0
            changed = True
            while changed and iterations < self.max_iterations:
                iterations += 1
                with span("mln.greedy_pass", iteration=iterations):
                    changed = self._greedy_pass_counting(network, state, free)
                if self.enable_group_moves:
                    with span("mln.group_pass", iteration=iterations):
                        group_changed = self._group_pass_counting(
                            network, state, free)
                    changed = changed or group_changed
            infer_span.add_attrs(iterations=iterations,
                                 matches=len(state.world))
        _INFERENCES.inc(engine="counting")
        _ITERATIONS.inc(iterations)
        return InferenceResult(matches=state.world, score=state.score,
                               iterations=iterations)

    def _greedy_pass_counting(self, network: GroundNetwork, state: WorldState,
                              free: Set[EntityPair]) -> bool:
        """Add every single pair with a strictly positive delta, to fixpoint.

        The worklist starts from every free pair (earlier group moves may have
        left unrelated pairs positive) and thereafter re-enqueues only the
        pairs sharing a grounding with an accepted pair — the only pairs whose
        delta can have changed.  The fixpoint is the unique greedy closure, so
        the result matches the naive full-rescan reference.
        """
        changed_any = False
        worklist: Deque[EntityPair] = deque(sorted(free))
        queued: Set[EntityPair] = set(worklist)
        while worklist:
            # Score the whole remaining worklist in one batched probe, then
            # walk it in FIFO order.  An accepted add only changes the deltas
            # of the pairs sharing a grounding with it (the dirty set), so
            # every batched value consumed before the walk reaches a dirty
            # (or newly appended) pair is exactly what delta_single would
            # return at pop time; at the first such pair the walk stops and
            # the remainder is re-batched.  The add sequence is therefore
            # identical to probing one pair at a time.
            batch = [pair for pair in worklist if pair in free]
            deltas = dict(zip(batch, state.delta_batch(batch)))
            dirty: Set[EntityPair] = set()
            while worklist:
                pair = worklist[0]
                if pair in free and (pair in dirty or pair not in deltas):
                    break
                worklist.popleft()
                queued.discard(pair)
                if pair not in free:
                    continue
                if deltas[pair] > SCORE_TOLERANCE:
                    state.add(pair)
                    free.discard(pair)
                    changed_any = True
                    for neighbor in network.affected_pairs(pair):
                        dirty.add(neighbor)
                        if neighbor in free and neighbor not in queued:
                            worklist.append(neighbor)
                            queued.add(neighbor)
        return changed_any

    def _group_pass_counting(self, network: GroundNetwork, state: WorldState,
                             free: Set[EntityPair]) -> bool:
        """Try collective chain moves seeded at each unmatched pair."""
        changed_any = False
        for seed in sorted(free):
            if seed not in free:
                continue  # absorbed by an earlier group this pass
            group = self._expand_group_counting(network, state, free, seed)
            joint_delta = state.delta(group)
            accept = joint_delta > SCORE_TOLERANCE or (
                self.accept_zero_gain_groups and joint_delta >= -SCORE_TOLERANCE
            )
            if accept:
                for pair in group:
                    state.add(pair)
                    free.discard(pair)
                changed_any = True
        return changed_any

    @staticmethod
    def _expand_group_counting(network: GroundNetwork, state: WorldState,
                               free: Set[EntityPair],
                               seed: EntityPair) -> Set[EntityPair]:
        """Grow a tentative group from ``seed`` by pulling in entailed pairs.

        Runs on a hypothetical copy of the state so probes stay O(degree).
        The worklist again starts from every free pair — an earlier accepted
        group in the same pass may have made a pair far from ``seed``
        positive, and the naive reference would absorb it — and propagates
        through the touching index.
        """
        hypothetical = state.copy()
        hypothetical.add(seed)
        group: Set[EntityPair] = {seed}
        worklist: Deque[EntityPair] = deque(sorted(free))
        queued: Set[EntityPair] = set(worklist)
        while worklist:
            # Same batched-worklist walk as _greedy_pass_counting: values are
            # consumed until the first pair whose delta an acceptance may
            # have changed, then the remainder is re-batched.
            batch = [pair for pair in worklist
                     if pair in free and pair not in group]
            deltas = dict(zip(batch, hypothetical.delta_batch(batch)))
            dirty: Set[EntityPair] = set()
            while worklist:
                pair = worklist[0]
                if pair in free and pair not in group \
                        and (pair in dirty or pair not in deltas):
                    break
                worklist.popleft()
                queued.discard(pair)
                if pair in group or pair not in free:
                    continue
                if deltas[pair] > SCORE_TOLERANCE:
                    hypothetical.add(pair)
                    group.add(pair)
                    for neighbor in network.affected_pairs(pair):
                        dirty.add(neighbor)
                        if neighbor in free and neighbor not in group \
                                and neighbor not in queued:
                            worklist.append(neighbor)
                            queued.add(neighbor)
        return group

    # ------------------------------------------------------ naive reference
    def _infer_naive(self, network: GroundNetwork, seed: Set[EntityPair],
                     clamped_false: FrozenSet[EntityPair]) -> InferenceResult:
        with span("mln.infer", engine="naive",
                  candidates=len(network.candidates)) as infer_span:
            world: Set[EntityPair] = set(seed)
            free_candidates = [
                pair for pair in sorted(network.candidates)
                if pair not in world and pair not in clamped_false
            ]

            iterations = 0
            changed = True
            while changed and iterations < self.max_iterations:
                iterations += 1
                with span("mln.greedy_pass", iteration=iterations):
                    changed = self._greedy_pass(network, world, free_candidates)
                if self.enable_group_moves:
                    with span("mln.group_pass", iteration=iterations):
                        group_changed = self._group_pass(
                            network, world, free_candidates)
                    changed = changed or group_changed
            infer_span.add_attrs(iterations=iterations, matches=len(world))
        _INFERENCES.inc(engine="naive")
        _ITERATIONS.inc(iterations)
        matched = frozenset(world)
        return InferenceResult(matches=matched, score=network.score(matched),
                               iterations=iterations)

    def _greedy_pass(self, network: GroundNetwork, world: Set[EntityPair],
                     free_candidates: List[EntityPair]) -> bool:
        """Add every single pair with a strictly positive delta; loop to fixpoint."""
        changed_any = False
        progress = True
        while progress:
            progress = False
            for pair in free_candidates:
                if pair in world:
                    continue
                if network.delta_single(pair, world) > SCORE_TOLERANCE:
                    world.add(pair)
                    progress = True
                    changed_any = True
        return changed_any

    def _group_pass(self, network: GroundNetwork, world: Set[EntityPair],
                    free_candidates: List[EntityPair]) -> bool:
        """Try collective chain moves seeded at each unmatched pair."""
        changed_any = False
        for seed in free_candidates:
            if seed in world:
                continue
            group = self._expand_group(network, world, free_candidates, seed)
            joint_delta = network.delta(group, world)
            accept = joint_delta > SCORE_TOLERANCE or (
                self.accept_zero_gain_groups and joint_delta >= -SCORE_TOLERANCE
            )
            if accept:
                world.update(group)
                changed_any = True
        return changed_any

    @staticmethod
    def _expand_group(network: GroundNetwork, world: Set[EntityPair],
                      free_candidates: Sequence[EntityPair],
                      seed: EntityPair) -> Set[EntityPair]:
        """Grow a tentative group from ``seed`` by pulling in entailed pairs.

        A pair is entailed when, with the current world plus the tentative
        group assumed matched, its own delta becomes strictly positive.
        Because the network is supermodular this expansion is monotone and
        terminates once no further pair is entailed.
        """
        group: Set[EntityPair] = {seed}
        progress = True
        while progress:
            progress = False
            hypothetical = world | group
            for pair in free_candidates:
                if pair in hypothetical:
                    continue
                if network.delta_single(pair, hypothetical) > SCORE_TOLERANCE:
                    group.add(pair)
                    progress = True
        return group


def exhaustive_map(network: GroundNetwork,
                   fixed_true: Iterable[EntityPair] = (),
                   fixed_false: Iterable[EntityPair] = (),
                   max_candidates: int = 18,
                   prefer_larger: bool = True) -> InferenceResult:
    """Brute-force MAP over all subsets of the free candidate pairs.

    Only feasible for tiny candidate sets (≤ ``max_candidates`` free pairs);
    raises :class:`InferenceError` beyond that.  ``prefer_larger`` implements
    the Type-II tie-break: among equal-score sets the largest is returned.
    """
    clamped_true = frozenset(fixed_true)
    clamped_false = frozenset(fixed_false) - clamped_true
    free = [pair for pair in sorted(network.candidates)
            if pair not in clamped_true and pair not in clamped_false]
    if len(free) > max_candidates:
        raise InferenceError(
            f"exhaustive_map limited to {max_candidates} free candidates, got {len(free)}"
        )
    best_set: FrozenSet[EntityPair] = frozenset(clamped_true)
    best_score = network.score(best_set)
    for size in range(len(free) + 1):
        for chosen in combinations(free, size):
            world = frozenset(clamped_true) | frozenset(chosen)
            score = network.score(world)
            better = score > best_score + SCORE_TOLERANCE
            tie_and_larger = (
                prefer_larger
                and abs(score - best_score) <= SCORE_TOLERANCE
                and len(world) > len(best_set)
            )
            if better or tie_and_larger:
                best_score = score
                best_set = world
    return InferenceResult(matches=best_set, score=best_score, iterations=1)
