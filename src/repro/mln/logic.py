"""First-order rule language for the MLN matcher.

The MLN matcher of Singla & Domingos, as used by the paper, is configured by
weighted implication rules such as (Appendix B)::

    similar(e1, e2, 3)                                   => equals(e1, e2)   12.75
    coauthor(e1, c1) ^ coauthor(e2, c2) ^ equals(c1, c2) => equals(e1, e2)    2.46

This module defines the small rule language: terms (variables / constants),
atoms, and weighted implication rules whose head is always the query predicate
``equals``.  Bodies mix *evidence* atoms (``similar``, ``coauthor``, ...) that
are grounded against the data, and *query* atoms (``equals``) whose truth is
decided by inference.

Proposition 4 of the paper shows that rules with at most one ``equals`` atom
in the body yield a monotone, supermodular matcher; :meth:`Rule.validate`
checks that restriction (it can be relaxed explicitly for experimentation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import MatcherError

#: Name of the query predicate whose groundings inference decides.
QUERY_PREDICATE = "equals"


@dataclass(frozen=True)
class Variable:
    """A logical variable, e.g. ``e1``."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term, e.g. the similarity level ``3``."""

    value: Union[str, int]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


Term = Union[Variable, Constant]


def var(name: str) -> Variable:
    """Shorthand constructor for a :class:`Variable`."""
    return Variable(name)


def const(value: Union[str, int]) -> Constant:
    """Shorthand constructor for a :class:`Constant`."""
    return Constant(value)


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, e.g. ``coauthor(e1, c1)``."""

    predicate: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def is_query(self) -> bool:
        """Whether this atom is over the query predicate ``equals``."""
        return self.predicate == QUERY_PREDICATE

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(term for term in self.terms if isinstance(term, Variable))

    def substitute(self, binding: Dict[Variable, str]) -> Tuple[Union[str, int], ...]:
        """Apply a variable binding, returning a tuple of ground values.

        Raises ``KeyError`` when a variable is unbound — grounding always binds
        all variables of an atom before substituting.
        """
        values: List[Union[str, int]] = []
        for term in self.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            else:
                values.append(binding[term])
        return tuple(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(repr(t) for t in self.terms)
        return f"{self.predicate}({args})"


def atom(predicate: str, *terms: Union[Term, str, int]) -> Atom:
    """Build an :class:`Atom`, coercing bare strings to variables and ints to constants.

    Strings are treated as variable names (the common case when writing rules
    in code); wrap a string in :func:`const` to make it a constant.
    """
    coerced: List[Term] = []
    for term in terms:
        if isinstance(term, (Variable, Constant)):
            coerced.append(term)
        elif isinstance(term, int):
            coerced.append(Constant(term))
        else:
            coerced.append(Variable(term))
    return Atom(predicate, tuple(coerced))


@dataclass(frozen=True)
class Rule:
    """A weighted implication rule ``body => head``.

    ``head`` must be a query (``equals``) atom.  ``body`` may contain evidence
    atoms and query atoms; the monotone fragment allows at most one query atom
    in the body.
    """

    name: str
    body: Tuple[Atom, ...]
    head: Atom
    weight: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.head.is_query:
            raise MatcherError(
                f"rule {self.name!r}: the head must be an {QUERY_PREDICATE!r} atom, "
                f"got {self.head.predicate!r}"
            )

    def evidence_atoms(self) -> Tuple[Atom, ...]:
        return tuple(a for a in self.body if not a.is_query)

    def query_atoms(self) -> Tuple[Atom, ...]:
        return tuple(a for a in self.body if a.is_query)

    def variables(self) -> FrozenSet[Variable]:
        variables = set(self.head.variables())
        for body_atom in self.body:
            variables |= body_atom.variables()
        return frozenset(variables)

    def is_monotone_fragment(self) -> bool:
        """At most one query atom in the body (Proposition 4)."""
        return len(self.query_atoms()) <= 1

    def validate(self, allow_non_monotone: bool = False) -> None:
        """Raise :class:`MatcherError` if the rule leaves the monotone fragment."""
        if not allow_non_monotone and not self.is_monotone_fragment():
            raise MatcherError(
                f"rule {self.name!r} has {len(self.query_atoms())} {QUERY_PREDICATE!r} atoms "
                "in its body; only one is allowed in the monotone fragment "
                "(pass allow_non_monotone=True to override)"
            )
        head_vars = self.head.variables()
        body_vars: set = set()
        for body_atom in self.body:
            body_vars |= body_atom.variables()
        unbound = head_vars - body_vars
        if unbound:
            raise MatcherError(
                f"rule {self.name!r}: head variables {sorted(v.name for v in unbound)} "
                "do not appear in the body and cannot be grounded"
            )

    def with_weight(self, weight: float) -> "Rule":
        """A copy of this rule carrying a different weight (used by learning)."""
        return Rule(self.name, self.body, self.head, weight)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " ^ ".join(repr(a) for a in self.body)
        return f"Rule({self.name}: {body} => {self.head!r} [{self.weight:+.2f}])"


class RuleSet:
    """An ordered collection of rules with unique names."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: List[Rule] = []
        self._by_name: Dict[str, Rule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        if rule.name in self._by_name:
            raise MatcherError(f"duplicate rule name {rule.name!r}")
        rule.validate(allow_non_monotone=True)
        self._rules.append(rule)
        self._by_name[rule.name] = rule

    def __iter__(self):
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __getitem__(self, name: str) -> Rule:
        return self._by_name[name]

    def names(self) -> List[str]:
        return [rule.name for rule in self._rules]

    def weights(self) -> Dict[str, float]:
        return {rule.name: rule.weight for rule in self._rules}

    def with_weights(self, weights: Dict[str, float]) -> "RuleSet":
        """A copy of the rule set with per-rule weights replaced."""
        return RuleSet(
            rule.with_weight(weights.get(rule.name, rule.weight)) for rule in self._rules
        )

    def is_monotone_fragment(self) -> bool:
        return all(rule.is_monotone_fragment() for rule in self._rules)


#: The weights learnt by Alchemy and reported in Appendix B of the paper.
PAPER_WEIGHTS: Dict[str, float] = {
    "similar_1": -2.28,
    "similar_2": -3.84,
    "similar_3": 12.75,
    "coauthor": 2.46,
}


def paper_author_rules(weights: Optional[Dict[str, float]] = None) -> RuleSet:
    """The Appendix-B MLN program for author matching.

    Rules 1-3 connect the discretised similarity level to a match decision;
    rule 4 rewards matching a pair of authors who have a pair of matching
    coauthors.  ``weights`` overrides the paper's learnt weights.
    """
    w = dict(PAPER_WEIGHTS)
    if weights:
        w.update(weights)
    rules = RuleSet()
    for level in (1, 2, 3):
        rules.add(Rule(
            name=f"similar_{level}",
            body=(atom("similar", "e1", "e2", level),),
            head=atom(QUERY_PREDICATE, "e1", "e2"),
            weight=w[f"similar_{level}"],
        ))
    rules.add(Rule(
        name="coauthor",
        body=(
            atom("coauthor", "e1", "c1"),
            atom("coauthor", "e2", "c2"),
            atom(QUERY_PREDICATE, "c1", "c2"),
        ),
        head=atom(QUERY_PREDICATE, "e1", "e2"),
        weight=w["coauthor"],
    ))
    return rules


def section2_example_rules(similar_weight: float = -5.0,
                           coauthor_weight: float = 8.0) -> RuleSet:
    """The two-rule program of Section 2.1 (R1 with weight −5, R2 with weight +8).

    Used by tests to reproduce the worked example of the paper (matching the
    (a1,a2), (b2,b3), (c2,c3) chain changes the score by exactly +1).
    """
    rules = RuleSet()
    rules.add(Rule(
        name="R1",
        body=(atom("similar", "x", "y"),),
        head=atom(QUERY_PREDICATE, "x", "y"),
        weight=similar_weight,
    ))
    rules.add(Rule(
        name="R2",
        body=(
            atom("similar", "x1", "y1"),
            atom("coauthor", "x1", "x2"),
            atom("coauthor", "y1", "y2"),
            atom(QUERY_PREDICATE, "x2", "y2"),
        ),
        head=atom(QUERY_PREDICATE, "x1", "y1"),
        weight=coauthor_weight,
    ))
    return rules
