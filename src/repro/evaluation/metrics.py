"""Accuracy metrics: pairwise precision, recall and F1.

The paper evaluates every scheme with pairwise precision/recall/F1 against the
ground truth (Figures 3(a)/(b) and 4(a)/(b)).  The metrics here operate on
sets of :class:`~repro.datamodel.pair.EntityPair`:

* *precision* — fraction of predicted pairs that are true matches,
* *recall* — fraction of true match pairs that were predicted,
* *F1* — harmonic mean of the two.

``restrict_to`` lets the caller evaluate recall against only the reachable
truth (e.g. true matches that are candidate pairs), which is how the paper's
"recall of UB upper-bounds the recall of the full run" argument is applied in
practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from ..datamodel import EntityPair


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision / recall / F1 triple with the underlying counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": float(self.true_positives),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
                f"(tp={self.true_positives}, fp={self.false_positives}, "
                f"fn={self.false_negatives})")


def precision_recall_f1(predicted: Iterable[EntityPair],
                        truth: Iterable[EntityPair],
                        restrict_to: Optional[Iterable[EntityPair]] = None
                        ) -> PrecisionRecall:
    """Pairwise precision/recall/F1 of ``predicted`` against ``truth``.

    ``restrict_to`` (when given) limits both sets to the supplied universe of
    pairs before computing the counts.
    """
    predicted_set = frozenset(predicted)
    truth_set = frozenset(truth)
    if restrict_to is not None:
        universe = frozenset(restrict_to)
        predicted_set &= universe
        truth_set &= universe

    true_positives = len(predicted_set & truth_set)
    false_positives = len(predicted_set - truth_set)
    false_negatives = len(truth_set - predicted_set)

    precision = true_positives / (true_positives + false_positives) \
        if predicted_set else (1.0 if not truth_set else 0.0)
    recall = true_positives / (true_positives + false_negatives) \
        if truth_set else 1.0
    f1 = (2 * precision * recall / (precision + recall)) \
        if (precision + recall) > 0 else 0.0
    return PrecisionRecall(precision, recall, f1,
                           true_positives, false_positives, false_negatives)


def cluster_metrics(predicted_clusters: Iterable[Iterable[str]],
                    true_clusters: Iterable[Iterable[str]]) -> Dict[str, float]:
    """Cluster-level precision/recall: fraction of exactly-recovered clusters.

    A coarser, easier-to-read metric sometimes used alongside pairwise F1:
    a predicted cluster counts as correct when it exactly equals some true
    cluster (singleton clusters are ignored on both sides).
    """
    predicted = {frozenset(c) for c in predicted_clusters if len(set(c)) > 1}
    truth = {frozenset(c) for c in true_clusters if len(set(c)) > 1}
    if not predicted and not truth:
        return {"cluster_precision": 1.0, "cluster_recall": 1.0}
    correct = len(predicted & truth)
    precision = correct / len(predicted) if predicted else 1.0
    recall = correct / len(truth) if truth else 1.0
    return {"cluster_precision": precision, "cluster_recall": recall}
