"""Quality metrics for covers / blocking schemes.

Blocking quality is traditionally judged independently of the matcher by two
complementary numbers:

* **pair completeness** (recall of the candidate set): the fraction of true
  match pairs that end up together in at least one neighborhood — a pair that
  never shares a neighborhood can never be matched by any scheme;
* **reduction ratio**: how much smaller the candidate-pair set is than the
  full quadratic set of comparisons.

These metrics drive the canopy-threshold ablation and are useful when tuning
a blocker for new data before paying for any matcher runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from ..blocking import Cover
from ..datamodel import EntityPair


@dataclass(frozen=True)
class BlockingReport:
    """Candidate-generation quality of a cover."""

    pair_completeness: float
    reduction_ratio: float
    candidate_pairs: int
    covered_true_pairs: int
    true_pairs: int
    total_possible_pairs: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "pair_completeness": self.pair_completeness,
            "reduction_ratio": self.reduction_ratio,
            "candidate_pairs": float(self.candidate_pairs),
            "covered_true_pairs": float(self.covered_true_pairs),
            "true_pairs": float(self.true_pairs),
            "total_possible_pairs": float(self.total_possible_pairs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockingReport(pair_completeness={self.pair_completeness:.3f}, "
                f"reduction_ratio={self.reduction_ratio:.3f}, "
                f"candidate_pairs={self.candidate_pairs})")


def covered_pairs(cover: Cover, pairs: Iterable[EntityPair]) -> FrozenSet[EntityPair]:
    """The subset of ``pairs`` whose two entities share at least one neighborhood."""
    return frozenset(p for p in pairs if cover.neighborhoods_of_pair(p))


def pair_completeness(cover: Cover, true_pairs: Iterable[EntityPair]) -> float:
    """Fraction of true match pairs co-located in some neighborhood."""
    truth = frozenset(true_pairs)
    if not truth:
        return 1.0
    return len(covered_pairs(cover, truth)) / len(truth)


def reduction_ratio(cover: Cover, entity_count: Optional[int] = None) -> float:
    """1 − (candidate pairs / all possible pairs); higher is cheaper.

    ``entity_count`` defaults to the number of entities the cover spans.  The
    candidate count is the sum of per-neighborhood pair counts (the work a
    matcher actually faces), so overlapping neighborhoods are counted with
    their duplication — a deliberately conservative measure.
    """
    count = entity_count if entity_count is not None else len(cover.covered_entities())
    total_possible = count * (count - 1) // 2
    if total_possible == 0:
        return 0.0
    return max(0.0, 1.0 - cover.total_pairs() / total_possible)


def evaluate_cover(cover: Cover, true_pairs: Iterable[EntityPair],
                   entity_count: Optional[int] = None) -> BlockingReport:
    """Full blocking-quality report for ``cover`` against the ground truth."""
    truth = frozenset(true_pairs)
    count = entity_count if entity_count is not None else len(cover.covered_entities())
    total_possible = count * (count - 1) // 2
    covered = covered_pairs(cover, truth)
    completeness = (len(covered) / len(truth)) if truth else 1.0
    reduction = max(0.0, 1.0 - cover.total_pairs() / total_possible) if total_possible else 0.0
    return BlockingReport(
        pair_completeness=completeness,
        reduction_ratio=reduction,
        candidate_pairs=cover.total_pairs(),
        covered_true_pairs=len(covered),
        true_pairs=len(truth),
        total_possible_pairs=total_possible,
    )
