"""Experiment harness: run schemes on a dataset and collect metric rows.

The benchmark scripts (one per table/figure of the paper) all follow the same
shape: build a dataset, build a cover, run a set of schemes with a matcher,
and report accuracy / soundness-completeness / running-time rows.  This module
factors that shape into :class:`ExperimentRunner` so that every bench is a
thin, declarative wrapper, and `EXPERIMENTS.md` can be generated from the same
rows the benches print.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..blocking import Blocker, CanopyBlocker, Cover, build_total_cover
from ..core import EMFramework, SchemeResult
from ..datamodel import EntityPair
from ..datasets import BibliographicDataset
from ..exceptions import ExperimentError
from ..matchers import TypeIIMatcher, TypeIMatcher
from .metrics import PrecisionRecall, precision_recall_f1
from .soundness import SoundnessReport, soundness_completeness


@dataclass
class ExperimentRow:
    """One row of an experiment table: a scheme's accuracy and cost."""

    dataset: str
    matcher: str
    scheme: str
    precision: float
    recall: float
    f1: float
    matches: int
    elapsed_seconds: float
    neighborhood_runs: int = 0
    soundness: Optional[float] = None
    completeness: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "dataset": self.dataset,
            "matcher": self.matcher,
            "scheme": self.scheme,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "matches": self.matches,
            "time_s": round(self.elapsed_seconds, 4),
            "runs": self.neighborhood_runs,
        }
        if self.soundness is not None:
            row["soundness"] = round(self.soundness, 4)
        if self.completeness is not None:
            row["completeness"] = round(self.completeness, 4)
        return row


@dataclass
class ExperimentOutcome:
    """All rows plus the raw scheme results of one experiment."""

    dataset: str
    rows: List[ExperimentRow] = field(default_factory=list)
    results: Dict[str, SchemeResult] = field(default_factory=dict)
    cover_stats: Dict[str, float] = field(default_factory=dict)

    def row_for(self, scheme: str) -> ExperimentRow:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise ExperimentError(f"no row for scheme {scheme!r} in experiment {self.dataset!r}")


class ExperimentRunner:
    """Runs a matcher + scheme set on a dataset and assembles metric rows."""

    def __init__(self, dataset: BibliographicDataset, matcher: TypeIMatcher,
                 cover: Optional[Cover] = None, blocker: Optional[Blocker] = None):
        self.dataset = dataset
        self.matcher = matcher
        self.framework = EMFramework(
            matcher=matcher,
            store=dataset.store,
            cover=cover,
            blocker=blocker if blocker is not None else CanopyBlocker(),
        )
        self.truth = dataset.true_matches()

    # ---------------------------------------------------------------- pieces
    def evaluate(self, result: SchemeResult,
                 reference: Optional[FrozenSet[EntityPair]] = None) -> ExperimentRow:
        """Turn a scheme result into a table row (optionally vs a reference run)."""
        accuracy = precision_recall_f1(result.matches, self.truth)
        soundness: Optional[float] = None
        completeness: Optional[float] = None
        if reference is not None:
            report = soundness_completeness(result.matches, reference)
            soundness = report.soundness
            completeness = report.completeness
        return ExperimentRow(
            dataset=self.dataset.name,
            matcher=self.matcher.name,
            scheme=result.scheme,
            precision=accuracy.precision,
            recall=accuracy.recall,
            f1=accuracy.f1,
            matches=len(result.matches),
            elapsed_seconds=result.elapsed_seconds,
            neighborhood_runs=result.neighborhood_runs,
            soundness=soundness,
            completeness=completeness,
        )

    # ------------------------------------------------------------------- run
    def run(self, schemes: Sequence[str] = ("no-mp", "smp", "mmp"),
            include_upper_bound: bool = False,
            include_full: bool = False,
            reference_scheme: Optional[str] = None) -> ExperimentOutcome:
        """Run the requested schemes and build the experiment table.

        ``reference_scheme`` names the scheme whose output the others'
        soundness/completeness is measured against ("full" or "ub" typically).
        """
        outcome = ExperimentOutcome(dataset=self.dataset.name,
                                    cover_stats=self.framework.cover_stats())
        results: Dict[str, SchemeResult] = {}

        for scheme in schemes:
            normalized = scheme.lower().replace("_", "-")
            if normalized == "mmp" and not isinstance(self.matcher, TypeIIMatcher):
                continue
            results[normalized] = self.framework.run(normalized)
        if include_full:
            results["full"] = self.framework.run_full()
        if include_upper_bound:
            results["ub"] = self.framework.run_upper_bound(self.truth)

        reference: Optional[FrozenSet[EntityPair]] = None
        if reference_scheme is not None:
            normalized_reference = reference_scheme.lower().replace("_", "-")
            if normalized_reference not in results:
                raise ExperimentError(
                    f"reference scheme {reference_scheme!r} was not among the runs"
                )
            reference = results[normalized_reference].matches

        for name, result in results.items():
            outcome.results[name] = result
            compare_against = reference if name != reference_scheme else None
            outcome.rows.append(self.evaluate(result, reference=compare_against))
        return outcome
