"""Soundness and completeness of a scheme relative to a reference run.

Section 2.2.1 defines the two framework-specific metrics:

* *soundness* — the fraction of the scheme's matches that the reference
  (ideally the matcher run on the whole dataset) also produces.  A sound
  scheme has soundness 1.
* *completeness* — the fraction of the reference's matches the scheme
  recovers.  Note this is *not* recall: it is measured against the matcher's
  own full-run output (or the UB surrogate), not against the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable

from ..datamodel import EntityPair


@dataclass(frozen=True)
class SoundnessReport:
    """Soundness/completeness of a scheme against a reference match set."""

    soundness: float
    completeness: float
    scheme_matches: int
    reference_matches: int
    common_matches: int

    @property
    def is_sound(self) -> bool:
        return self.soundness >= 1.0

    @property
    def is_complete(self) -> bool:
        return self.completeness >= 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "soundness": self.soundness,
            "completeness": self.completeness,
            "scheme_matches": float(self.scheme_matches),
            "reference_matches": float(self.reference_matches),
            "common_matches": float(self.common_matches),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SoundnessReport(soundness={self.soundness:.3f}, "
                f"completeness={self.completeness:.3f})")


def soundness_completeness(scheme_matches: Iterable[EntityPair],
                           reference_matches: Iterable[EntityPair]) -> SoundnessReport:
    """Compute soundness and completeness of ``scheme_matches`` vs ``reference_matches``."""
    scheme_set = frozenset(scheme_matches)
    reference_set = frozenset(reference_matches)
    common = scheme_set & reference_set
    soundness = len(common) / len(scheme_set) if scheme_set else 1.0
    completeness = len(common) / len(reference_set) if reference_set else 1.0
    return SoundnessReport(
        soundness=soundness,
        completeness=completeness,
        scheme_matches=len(scheme_set),
        reference_matches=len(reference_set),
        common_matches=len(common),
    )
