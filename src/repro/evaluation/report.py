"""Plain-text report tables.

The benchmark scripts print the same rows the paper's figures plot; these
helpers render them as aligned ASCII tables so the output of
``pytest benchmarks/ --benchmark-only`` is readable on its own and can be
pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]
Row = Mapping[str, Cell]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Row], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render ``rows`` (dicts) as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body: List[List[str]] = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def format_experiment(outcome, columns: Optional[Sequence[str]] = None,
                      title: Optional[str] = None) -> str:
    """Render an :class:`~repro.evaluation.experiment.ExperimentOutcome`."""
    rows = [row.as_dict() for row in outcome.rows]
    return format_table(rows, columns=columns, title=title)


def format_key_values(values: Mapping[str, Cell], title: Optional[str] = None) -> str:
    """Render a flat mapping as ``key: value`` lines (cover stats etc.)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in values.items():
        lines.append(f"  {key}: {_format_cell(value)}")
    return "\n".join(lines)
