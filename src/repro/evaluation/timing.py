"""Small timing utilities shared by the experiment harness and the benches."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Stopwatch:
    """Accumulates named durations.

    >>> watch = Stopwatch()
    >>> with watch.measure("blocking"):
    ...     build_cover()
    >>> watch.total("blocking")
    """

    durations: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.durations.setdefault(label, []).append(elapsed)

    def total(self, label: str) -> float:
        """Total seconds recorded under ``label`` (0.0 when never measured)."""
        return sum(self.durations.get(label, ()))

    def count(self, label: str) -> int:
        return len(self.durations.get(label, ()))

    def summary(self) -> Dict[str, float]:
        return {label: sum(values) for label, values in self.durations.items()}


def time_call(function, *args, **kwargs):
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started
