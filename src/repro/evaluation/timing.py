"""Small timing utilities shared by the experiment harness and the benches.

:class:`Stopwatch` predates the telemetry layer; it is now a thin adapter
over it.  Every ``measure()`` block still appends into the per-instance
``durations`` dict (the public interface the harness reads), and *also*
opens a :func:`repro.obs.trace.span` named ``stopwatch.<label>`` and feeds a
shared ``stopwatch_seconds{label=...}`` histogram in the process-wide
registry — so harness timings show up in traces and ``/metrics`` for free.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..obs import registry as obs_registry
from ..obs.trace import span

_STOPWATCH_SECONDS = obs_registry.histogram(
    "stopwatch_seconds", "Durations recorded through Stopwatch.measure",
    labels=("label",))


@dataclass
class Stopwatch:
    """Accumulates named durations (thread-safe).

    >>> watch = Stopwatch()
    >>> with watch.measure("blocking"):
    ...     build_cover()
    >>> watch.total("blocking")
    """

    durations: Dict[str, List[float]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            with span(f"stopwatch.{label}"):
                yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self.durations.setdefault(label, []).append(elapsed)
            _STOPWATCH_SECONDS.observe(elapsed, label=label)

    def total(self, label: str) -> float:
        """Total seconds recorded under ``label`` (0.0 when never measured)."""
        with self._lock:
            return sum(self.durations.get(label, ()))

    def count(self, label: str) -> int:
        with self._lock:
            return len(self.durations.get(label, ()))

    def summary(self) -> Dict[str, float]:
        with self._lock:
            return {label: sum(values)
                    for label, values in self.durations.items()}


def time_call(function, *args, **kwargs):
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started
