"""Evaluation: accuracy metrics, soundness/completeness, experiment harness."""

from .blocking_metrics import (
    BlockingReport,
    covered_pairs,
    evaluate_cover,
    pair_completeness,
    reduction_ratio,
)
from .experiment import ExperimentOutcome, ExperimentRow, ExperimentRunner
from .metrics import PrecisionRecall, cluster_metrics, precision_recall_f1
from .report import format_experiment, format_key_values, format_table
from .soundness import SoundnessReport, soundness_completeness
from .timing import Stopwatch, time_call

__all__ = [
    "BlockingReport",
    "ExperimentOutcome",
    "ExperimentRow",
    "ExperimentRunner",
    "PrecisionRecall",
    "SoundnessReport",
    "Stopwatch",
    "cluster_metrics",
    "covered_pairs",
    "evaluate_cover",
    "format_experiment",
    "format_key_values",
    "format_table",
    "pair_completeness",
    "precision_recall_f1",
    "reduction_ratio",
    "soundness_completeness",
    "time_call",
]
