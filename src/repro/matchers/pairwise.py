"""Pair-wise (non-relational) baseline matcher in the Fellegi–Sunter style.

Appendix D's survey starts with the classic non-relational approaches
(Newcombe; Fellegi & Sunter): each candidate pair is classified independently
from attribute similarity alone.  This matcher implements that baseline:

* each configured attribute comparison contributes a log-likelihood-ratio
  weight — ``log(m/u)`` on agreement and ``log((1-m)/(1-u))`` on
  disagreement, where ``m``/``u`` are the match/unmatch agreement
  probabilities;
* a pair is declared a match when its total weight exceeds a threshold.

It ignores relational information entirely, so it cannot disambiguate
same-name authors; the example applications use it to show the accuracy gap
to the collective matchers.  Positive evidence is unioned into the output and
negative evidence removed, which keeps the matcher trivially well-behaved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..datamodel import Entity, EntityPair, EntityStore, Evidence
from ..similarity import jaro_winkler_similarity
from .base import TypeIMatcher


@dataclass(frozen=True)
class AttributeComparison:
    """One attribute comparison in the Fellegi–Sunter model.

    Parameters
    ----------
    attribute:
        Entity attribute to compare.
    similarity:
        String similarity applied to the two values.
    agreement_threshold:
        Similarity at or above which the attribute is considered to agree.
    m_probability / u_probability:
        Probability of agreement among true matches / true non-matches.
    """

    attribute: str
    similarity: Callable[[str, str], float] = jaro_winkler_similarity
    agreement_threshold: float = 0.9
    m_probability: float = 0.95
    u_probability: float = 0.05

    def __post_init__(self) -> None:
        for probability in (self.m_probability, self.u_probability):
            if not 0.0 < probability < 1.0:
                raise ValueError("m/u probabilities must lie strictly between 0 and 1")

    @property
    def agreement_weight(self) -> float:
        return math.log(self.m_probability / self.u_probability)

    @property
    def disagreement_weight(self) -> float:
        return math.log((1.0 - self.m_probability) / (1.0 - self.u_probability))

    def weight(self, entity_a: Entity, entity_b: Entity) -> float:
        value_a = str(entity_a.get(self.attribute, ""))
        value_b = str(entity_b.get(self.attribute, ""))
        if not value_a and not value_b:
            return 0.0
        score = self.similarity(value_a, value_b)
        if score >= self.agreement_threshold:
            return self.agreement_weight
        return self.disagreement_weight


def default_author_comparisons() -> List[AttributeComparison]:
    """Default comparisons for author references: first and last name."""
    return [
        AttributeComparison("lname", m_probability=0.97, u_probability=0.02),
        AttributeComparison("fname", m_probability=0.90, u_probability=0.10,
                            agreement_threshold=0.85),
    ]


class PairwiseMatcher(TypeIMatcher):
    """Independent pair-wise classification of the candidate pairs."""

    name = "pairwise"

    def __init__(self, comparisons: Optional[Sequence[AttributeComparison]] = None,
                 match_threshold: float = 3.0):
        self.comparisons = list(comparisons) if comparisons is not None \
            else default_author_comparisons()
        if not self.comparisons:
            raise ValueError("at least one attribute comparison is required")
        self.match_threshold = match_threshold
        self.match_calls = 0

    def pair_weight(self, store: EntityStore, pair: EntityPair) -> float:
        """Total Fellegi–Sunter weight of one candidate pair."""
        entity_a = store.entity(pair.first)
        entity_b = store.entity(pair.second)
        return sum(comparison.weight(entity_a, entity_b) for comparison in self.comparisons)

    def match(self, store: EntityStore,
              evidence: Optional[Evidence] = None) -> FrozenSet[EntityPair]:
        evidence = evidence if evidence is not None else Evidence.empty()
        self.match_calls += 1
        entity_ids = store.entity_ids()
        positive = {p for p in evidence.positive
                    if p.first in entity_ids and p.second in entity_ids}
        negative = {p for p in evidence.negative
                    if p.first in entity_ids and p.second in entity_ids}
        matches = set(positive)
        for pair in store.similar_pairs():
            if pair in negative or pair in matches:
                continue
            if self.pair_weight(store, pair) >= self.match_threshold:
                matches.add(pair)
        return frozenset(matches)
