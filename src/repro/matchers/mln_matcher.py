"""The MLN collective matcher wrapped as a Type-II black box.

This is the paper's primary matcher (Singla & Domingos's MLN-based entity
resolution, Appendix B rules).  It is:

* **collective** — the coauthor rule couples match decisions, so chains of
  mutually-supporting matches are found only when considered together;
* **probabilistic** — the score of any match set is the total weight of fired
  ground rules, so :meth:`log_score`/:meth:`score_delta` are cheap;
* **well-behaved** — with the paper's rule set (one ``equals`` atom per rule
  body, Proposition 4) the matcher is idempotent, monotone and supermodular,
  which is what the framework's soundness theorems require.

Ground networks are cached per entity store so that re-running the matcher on
the same neighborhood with more evidence (the common case during message
passing) does not pay the grounding cost again.  Next to the network cache
lives a per-store *result* cache: because the matcher is idempotent and
monotone, a previous result obtained under a subset of the current positive
evidence (and identical negative evidence) is contained in the current answer
and can seed — *warm-start* — the MAP search, so revisits and the per-pair
maximal-message probes only pay for the delta their extra evidence causes.
Both caches are dropped on pickling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..datamodel import EntityPair, EntityStore, Evidence
from ..mln import (
    GreedyCollectiveInference,
    GroundNetwork,
    MarkovLogicNetwork,
    RuleSet,
    paper_author_rules,
)
from .base import TypeIIMatcher, WarmStartCache


class MLNMatcher(TypeIIMatcher):
    """Markov-Logic-Network collective entity matcher (Type-II)."""

    name = "mln"
    supports_warm_start = True

    def __init__(self, rules: Optional[RuleSet] = None,
                 inference: Optional[GreedyCollectiveInference] = None,
                 coauthor_relation: str = "coauthor",
                 cache_networks: bool = True,
                 cache_results: bool = True,
                 max_cached_stores: int = 2048):
        self.mln = MarkovLogicNetwork(
            rules=rules if rules is not None else paper_author_rules(),
            inference=inference if inference is not None else GreedyCollectiveInference(),
            coauthor_relation=coauthor_relation,
        )
        self.cache_networks = cache_networks
        self.cache_results = cache_results
        if max_cached_stores < 1:
            raise ValueError("max_cached_stores must be >= 1")
        #: LRU bound on the number of *stores* with a cached network / result
        #: cache.  A batch run touches a fixed set of neighborhood stores, but
        #: a long-running delta stream materialises fresh stores for dirty
        #: neighborhoods every batch — without a cap the per-store caches
        #: would pin every one of them forever.  The default comfortably
        #: covers one instance's worth of neighborhoods (so steady-state runs
        #: never thrash) while still bounding unattended streams.
        self.max_cached_stores = max_cached_stores
        # id(store) -> (store, network), most-recently-used last.  The store
        # reference keeps the id stable while the entry lives.
        self._network_cache: "OrderedDict[int, Tuple[EntityStore, GroundNetwork]]" = OrderedDict()
        # id(store) -> (store, WarmStartCache of recent results), MRU last.
        self._result_cache: "OrderedDict[int, Tuple[EntityStore, WarmStartCache]]" = OrderedDict()
        #: Number of times :meth:`match` has been invoked (used by the
        #: experiment harness to report matcher work).
        self.match_calls = 0
        # Cheap cache-efficacy tallies ([hits, misses] per cache — plain int
        # bumps, no lock needed under the GIL).  The grid folds the deltas
        # into the metrics registry via :meth:`consume_cache_stats`.
        self._cache_stats = {"mln_network": [0, 0], "mln_result": [0, 0]}
        self._cache_consumed = {"mln_network": [0, 0], "mln_result": [0, 0]}

    # -------------------------------------------------------------- networks
    def network_for(self, store: EntityStore) -> GroundNetwork:
        """The (cached) ground network for ``store``."""
        if not self.cache_networks:
            return self.mln.ground(store)
        key = id(store)
        cached = self._network_cache.get(key)
        if cached is not None and cached[0] is store:
            self._network_cache.move_to_end(key)
            self._cache_stats["mln_network"][0] += 1
            return cached[1]
        self._cache_stats["mln_network"][1] += 1
        network = self.mln.ground(store)
        self._network_cache[key] = (store, network)
        while len(self._network_cache) > self.max_cached_stores:
            self._network_cache.popitem(last=False)
        return network

    def _results_for(self, store: EntityStore) -> Optional[WarmStartCache]:
        """The per-store warm-start cache (``None`` when result caching is off)."""
        if not self.cache_results:
            return None
        key = id(store)
        cached = self._result_cache.get(key)
        if cached is not None and cached[0] is store:
            self._result_cache.move_to_end(key)
            self._cache_stats["mln_result"][0] += 1
            return cached[1]
        self._cache_stats["mln_result"][1] += 1
        fresh = WarmStartCache()
        self._result_cache[key] = (store, fresh)
        while len(self._result_cache) > self.max_cached_stores:
            self._result_cache.popitem(last=False)
        return fresh

    def clear_cache(self) -> None:
        self._network_cache.clear()
        self._result_cache.clear()

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Lifetime cache efficacy per internal LRU cache."""
        network_hits, network_misses = self._cache_stats["mln_network"]
        result_hits, result_misses = self._cache_stats["mln_result"]
        return {
            "mln_network": {"hits": network_hits, "misses": network_misses,
                            "entries": len(self._network_cache)},
            "mln_result": {"hits": result_hits, "misses": result_misses,
                           "entries": len(self._result_cache)},
        }

    def consume_cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hits/misses since the last consume (registry-fold protocol).

        The grid calls this after each run and increments the process-wide
        ``lru_cache_{hits,misses}_total`` counters by the returned deltas, so
        repeated runs accumulate without double counting.
        """
        deltas = {}
        for name, (hits, misses) in self._cache_stats.items():
            seen_hits, seen_misses = self._cache_consumed[name]
            deltas[name] = {"hits": hits - seen_hits,
                            "misses": misses - seen_misses}
            self._cache_consumed[name] = [hits, misses]
        return deltas

    # -------------------------------------------------------------- pickling
    def __getstate__(self):
        # Both caches are keyed on id(store), which is meaningless in another
        # process, and shipping ground networks would dwarf the task payload —
        # the worker re-grounds its (small) neighborhood store.  The tallies
        # restart too: a worker copy's stats describe only its own caches.
        state = self.__dict__.copy()
        state["_network_cache"] = OrderedDict()
        state["_result_cache"] = OrderedDict()
        state["_cache_stats"] = {"mln_network": [0, 0], "mln_result": [0, 0]}
        state["_cache_consumed"] = {"mln_network": [0, 0],
                                    "mln_result": [0, 0]}
        return state

    # -------------------------------------------------------------- matching
    def match(self, store: EntityStore,
              evidence: Optional[Evidence] = None,
              warm_start: Optional[Iterable[EntityPair]] = None) -> FrozenSet[EntityPair]:
        """Most likely match set of ``store`` under ``evidence``.

        ``warm_start`` pairs are seeded into the MAP search; the caller must
        guarantee they are contained in the answer (in practice: a previous
        result of this matcher on the same store under a subset of the current
        evidence).  Compatible results from the per-store cache are merged in
        automatically.
        """
        evidence = evidence if evidence is not None else Evidence.empty()
        self.match_calls += 1
        network = self.network_for(store)
        entity_ids = store.entity_ids()
        positive = frozenset(p for p in evidence.positive
                             if p.first in entity_ids and p.second in entity_ids)
        negative = frozenset(p for p in evidence.negative
                             if p.first in entity_ids and p.second in entity_ids)

        warm: Set[EntityPair] = set(warm_start) if warm_start else set()
        results = self._results_for(store)
        if results is not None:
            cached = results.lookup(positive, negative)
            if cached is not None:
                warm |= cached

        inference = self.mln.inference
        if warm and getattr(inference, "supports_warm_start", False):
            result = inference.infer(network, fixed_true=positive,
                                     fixed_false=negative,
                                     warm_start=frozenset(warm))
        else:
            result = inference.infer(network, fixed_true=positive,
                                     fixed_false=negative)
        if results is not None:
            results.store(positive, negative, result.matches)
        return result.matches

    # --------------------------------------------------------------- scoring
    def log_score(self, store: EntityStore,
                  matches: Iterable[EntityPair]) -> float:
        return self.network_for(store).score(matches)

    def score_delta(self, store: EntityStore, base: Iterable[EntityPair],
                    added: Iterable[EntityPair]) -> float:
        return self.network_for(store).delta(added, base)

    # ------------------------------------------------------------ diagnostics
    def explain(self, store: EntityStore,
                matches: Iterable[EntityPair]) -> Dict[str, float]:
        """Per-rule breakdown of the score of ``matches`` (for debugging/reports)."""
        return self.network_for(store).explain(matches)

    def candidate_pairs(self, store: EntityStore) -> FrozenSet[EntityPair]:
        """The match decisions that exist for ``store`` (its similar pairs)."""
        return self.network_for(store).candidates
