"""Empirical property checkers for black-box matchers.

The framework's guarantees (Theorems 1, 2, 4) hold for *well-behaved*
matchers: idempotent + monotone, and supermodular in the probabilistic case.
These checkers probe a matcher on a given instance and report violations,
which serves three purposes:

* validating that the built-in matchers honour their contracts (unit tests),
* letting users check whether *their* custom matcher can expect the soundness
  guarantee before plugging it into the framework,
* documenting precisely what each property means operationally.

All checks are necessarily empirical — they sample sub-instances and evidence
sets rather than proving the property — so a clean report is evidence, not
proof.  A non-empty violation list, however, is a definite counterexample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..datamodel import EntityPair, EntityStore, Evidence
from .base import TypeIIMatcher, TypeIMatcher


@dataclass
class PropertyViolation:
    """A single observed violation of a matcher property."""

    property_name: str
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.property_name}] {self.description}"


@dataclass
class PropertyReport:
    """Aggregated result of a property check run."""

    checks: int = 0
    violations: List[PropertyViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "PropertyReport") -> "PropertyReport":
        return PropertyReport(self.checks + other.checks,
                              self.violations + other.violations)


def _sample_evidence(pairs: Sequence[EntityPair], rng: random.Random,
                     max_size: int) -> FrozenSet[EntityPair]:
    if not pairs or max_size == 0:
        return frozenset()
    size = rng.randint(0, min(max_size, len(pairs)))
    return frozenset(rng.sample(list(pairs), size))


def check_idempotence(matcher: TypeIMatcher, store: EntityStore,
                      trials: int = 5, seed: int = 0) -> PropertyReport:
    """Definition 2: feeding the output back as positive evidence changes nothing."""
    rng = random.Random(seed)
    report = PropertyReport()
    candidate_pairs = sorted(store.similar_pairs())
    for _ in range(trials):
        negative = _sample_evidence(candidate_pairs, rng, max_size=2)
        output = matcher.match(store, Evidence.of(negative=negative))
        replayed = matcher.match(store, Evidence.of(positive=output, negative=negative))
        report.checks += 1
        if replayed != output:
            report.violations.append(PropertyViolation(
                "idempotence",
                f"output changed when re-fed as evidence: {sorted(output)} -> {sorted(replayed)}",
            ))
    return report


def check_monotonicity(matcher: TypeIMatcher, store: EntityStore,
                       trials: int = 5, seed: int = 0) -> PropertyReport:
    """Definition 3: more entities / more V+ gives ⊇ output; more V− gives ⊆ output."""
    rng = random.Random(seed)
    report = PropertyReport()
    all_ids = sorted(store.entity_ids())
    candidate_pairs = sorted(store.similar_pairs())
    baseline = matcher.match(store)

    for _ in range(trials):
        # (i) Entity monotonicity: the output on a random sub-instance is a subset.
        if len(all_ids) > 1:
            subset_size = rng.randint(1, len(all_ids))
            sub_ids = set(rng.sample(all_ids, subset_size))
            sub_store = store.restrict(sub_ids)
            sub_output = matcher.match(sub_store)
            report.checks += 1
            if not sub_output <= baseline:
                extra = sorted(sub_output - baseline)
                report.violations.append(PropertyViolation(
                    "monotonicity/entities",
                    f"sub-instance produced matches absent from the full run: {extra}",
                ))

        # (ii) Positive-evidence monotonicity.
        positive = _sample_evidence(candidate_pairs, rng, max_size=3)
        with_positive = matcher.match(store, Evidence.of(positive=positive))
        report.checks += 1
        if not with_positive >= baseline:
            missing = sorted(baseline - with_positive)
            report.violations.append(PropertyViolation(
                "monotonicity/positive-evidence",
                f"adding positive evidence lost matches: {missing}",
            ))

        # (iii) Negative-evidence anti-monotonicity.
        negative = _sample_evidence(candidate_pairs, rng, max_size=3)
        with_negative = matcher.match(store, Evidence.of(negative=negative))
        report.checks += 1
        if not with_negative <= baseline:
            extra = sorted(with_negative - baseline)
            report.violations.append(PropertyViolation(
                "monotonicity/negative-evidence",
                f"adding negative evidence produced new matches: {extra}",
            ))
    return report


def check_supermodularity(matcher: TypeIIMatcher, store: EntityStore,
                          trials: int = 20, seed: int = 0) -> PropertyReport:
    """Definition 6: the score gain of one extra pair never shrinks as the set grows."""
    rng = random.Random(seed)
    report = PropertyReport()
    candidates = sorted(store.similar_pairs())
    if len(candidates) < 2:
        return report
    for _ in range(trials):
        pair = rng.choice(candidates)
        others = [p for p in candidates if p != pair]
        small_size = rng.randint(0, len(others))
        small = set(rng.sample(others, small_size))
        growth = [p for p in others if p not in small]
        extra_size = rng.randint(0, len(growth)) if growth else 0
        large = small | set(rng.sample(growth, extra_size))

        gain_small = matcher.score_delta(store, small, {pair})
        gain_large = matcher.score_delta(store, large, {pair})
        report.checks += 1
        if gain_large < gain_small - 1e-9:
            report.violations.append(PropertyViolation(
                "supermodularity",
                f"gain of {pair} dropped from {gain_small:.4f} (|S|={len(small)}) "
                f"to {gain_large:.4f} (|T|={len(large)})",
            ))
    return report


def check_well_behaved(matcher: TypeIMatcher, store: EntityStore,
                       trials: int = 5, seed: int = 0) -> PropertyReport:
    """Idempotence + monotonicity (+ supermodularity for Type-II matchers)."""
    report = check_idempotence(matcher, store, trials=trials, seed=seed)
    report = report.merge(check_monotonicity(matcher, store, trials=trials, seed=seed))
    if isinstance(matcher, TypeIIMatcher):
        report = report.merge(check_supermodularity(matcher, store,
                                                    trials=trials * 4, seed=seed))
    return report
