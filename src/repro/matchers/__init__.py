"""Black-box matcher layer: protocols, concrete matchers, property checkers."""

from .base import TypeIIMatcher, TypeIMatcher, WarmStartCache
from .iterative import IterativeMatcher, IterativeMatcherConfig
from .mln_matcher import MLNMatcher
from .pairwise import AttributeComparison, PairwiseMatcher, default_author_comparisons
from .properties import (
    PropertyReport,
    PropertyViolation,
    check_idempotence,
    check_monotonicity,
    check_supermodularity,
    check_well_behaved,
)
from .rules_matcher import RulesMatcher

__all__ = [
    "AttributeComparison",
    "IterativeMatcher",
    "IterativeMatcherConfig",
    "MLNMatcher",
    "PairwiseMatcher",
    "PropertyReport",
    "PropertyViolation",
    "RulesMatcher",
    "TypeIIMatcher",
    "TypeIMatcher",
    "WarmStartCache",
    "check_idempotence",
    "check_monotonicity",
    "check_supermodularity",
    "check_well_behaved",
    "default_author_comparisons",
]
