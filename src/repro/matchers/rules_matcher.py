"""The RULES matcher: Dedupalog-style declarative matching as a Type-I black box.

This is the paper's second matcher (Appendix B/C): three soft collective
rules evaluated to a least fixpoint followed by a transitive closure.  It is
deterministic (Type-I), monotone in the positive fragment, and fast — the
paper runs it on the full datasets directly, which is what makes the exact
soundness/completeness measurements of Figure 4 possible.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from ..datamodel import EntityPair, EntityStore, Evidence
from ..dedupalog import DedupalogEngine, DedupalogProgram, paper_rules_program
from .base import TypeIMatcher


class RulesMatcher(TypeIMatcher):
    """Declarative rule-based collective matcher (Type-I)."""

    name = "rules"

    def __init__(self, program: Optional[DedupalogProgram] = None,
                 coauthor_relation: str = "coauthor", clustering_seed: int = 0):
        self.program = program if program is not None else paper_rules_program()
        self.engine = DedupalogEngine(self.program, coauthor_relation=coauthor_relation,
                                      clustering_seed=clustering_seed)
        #: Number of times :meth:`match` has been invoked.
        self.match_calls = 0

    def match(self, store: EntityStore,
              evidence: Optional[Evidence] = None) -> FrozenSet[EntityPair]:
        evidence = evidence if evidence is not None else Evidence.empty()
        self.match_calls += 1
        entity_ids = store.entity_ids()
        positive = frozenset(p for p in evidence.positive
                             if p.first in entity_ids and p.second in entity_ids)
        negative = frozenset(p for p in evidence.negative
                             if p.first in entity_ids and p.second in entity_ids)
        return self.engine.evaluate(store, positive=positive, negative=negative)

    @property
    def is_monotone_program(self) -> bool:
        """Whether the configured program lies in the monotone fragment."""
        return self.program.is_monotone()
