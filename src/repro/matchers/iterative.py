"""Iterative relational matcher (Bhattacharya & Getoor / Dong et al. style).

Appendix D classifies collective approaches into *iterative* and
*purely-collective*.  Iterative matchers repeatedly re-score candidate pairs,
using already-made match decisions as extra relational evidence, until a
fixpoint; they are simple and monotone but suffer from the bootstrapping
problem (a chain of mutually-dependent matches is never entered).

This matcher scores a candidate pair as a weighted combination of its
attribute similarity and the number of matched (or shared) coauthor pairs,
and accepts pairs above a threshold.  It is included both as a literature
baseline and as a second well-behaved Type-I matcher for exercising the
framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..datamodel import COAUTHOR, EntityPair, EntityStore, Evidence
from .base import TypeIMatcher


@dataclass(frozen=True)
class IterativeMatcherConfig:
    """Scoring configuration for :class:`IterativeMatcher`.

    ``attribute_weight`` multiplies the raw similarity score (in [0, 1]);
    ``relational_weight`` multiplies the number of supporting coauthor pairs
    (capped at ``max_relational_support`` to avoid unbounded scores);
    ``match_threshold`` is the acceptance cut-off.
    """

    attribute_weight: float = 1.0
    relational_weight: float = 0.4
    max_relational_support: int = 3
    match_threshold: float = 1.05

    def __post_init__(self) -> None:
        if self.max_relational_support < 0:
            raise ValueError("max_relational_support must be >= 0")


class IterativeMatcher(TypeIMatcher):
    """Iteratively propagate match decisions through the coauthor relation."""

    name = "iterative"

    def __init__(self, config: Optional[IterativeMatcherConfig] = None,
                 coauthor_relation: str = COAUTHOR):
        self.config = config if config is not None else IterativeMatcherConfig()
        self.coauthor_relation = coauthor_relation
        self.match_calls = 0

    # --------------------------------------------------------------- scoring
    def _relational_support(self, store: EntityStore, pair: EntityPair,
                            matches: Set[EntityPair]) -> int:
        if not store.has_relation(self.coauthor_relation):
            return 0
        relation = store.relation(self.coauthor_relation)
        coauthors_a = relation.neighbors(pair.first)
        coauthors_b = relation.neighbors(pair.second)
        if not coauthors_a or not coauthors_b:
            return 0
        support: Set[Tuple[str, ...]] = set()
        for c1 in coauthors_a:
            for c2 in coauthors_b:
                if c1 == c2:
                    support.add((c1,))
                elif EntityPair.of(c1, c2) in matches:
                    support.add(tuple(sorted((c1, c2))))
        return min(len(support), self.config.max_relational_support)

    def pair_score(self, store: EntityStore, pair: EntityPair,
                   matches: Set[EntityPair]) -> float:
        """Combined attribute + relational score of ``pair`` given current matches."""
        edge = store.similarity(pair)
        attribute_score = edge.score if edge is not None else 0.0
        support = self._relational_support(store, pair, matches)
        return (self.config.attribute_weight * attribute_score
                + self.config.relational_weight * support)

    # -------------------------------------------------------------- matching
    def match(self, store: EntityStore,
              evidence: Optional[Evidence] = None) -> FrozenSet[EntityPair]:
        evidence = evidence if evidence is not None else Evidence.empty()
        self.match_calls += 1
        entity_ids = store.entity_ids()
        positive = {p for p in evidence.positive
                    if p.first in entity_ids and p.second in entity_ids}
        negative = {p for p in evidence.negative
                    if p.first in entity_ids and p.second in entity_ids}
        matches: Set[EntityPair] = set(positive)
        candidates = [p for p in sorted(store.similar_pairs()) if p not in negative]
        changed = True
        while changed:
            changed = False
            for pair in candidates:
                if pair in matches:
                    continue
                if self.pair_score(store, pair, matches) >= self.config.match_threshold:
                    matches.add(pair)
                    changed = True
        return frozenset(matches)
