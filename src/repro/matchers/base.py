"""Black-box matcher abstractions (Section 3 of the paper).

* :class:`TypeIMatcher` — a deterministic matcher: a function from an entity
  collection plus positive/negative evidence sets to a set of matches
  (Definition 1).  Any entity matcher can be wrapped this way.
* :class:`TypeIIMatcher` — a probabilistic matcher: additionally exposes the
  (unnormalised log-)probability of an arbitrary match set, so the framework
  can perform the cheap score comparisons MMP's step 7 needs (Definition 5).

A matcher is *well-behaved* (Definition 4) when it is idempotent and monotone;
Type-II matchers should additionally be supermodular (Definition 6) for MMP's
soundness guarantee.  The property checkers in
:mod:`repro.matchers.properties` test these empirically on small instances.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, Optional

from ..datamodel import EntityPair, EntityStore, Evidence


class TypeIMatcher(abc.ABC):
    """Deterministic black-box entity matcher."""

    #: Human-readable name used in reports and experiment tables.
    name: str = "matcher"

    @abc.abstractmethod
    def match(self, store: EntityStore,
              evidence: Optional[Evidence] = None) -> FrozenSet[EntityPair]:
        """Return the matches for the entities in ``store`` given ``evidence``.

        ``evidence.positive`` pairs must be honoured as known matches,
        ``evidence.negative`` pairs must never be returned.  The output is a
        set of canonical :class:`EntityPair` values over entities of
        ``store``.
        """

    def match_pairs(self, store: EntityStore,
                    positive: Iterable[EntityPair] = (),
                    negative: Iterable[EntityPair] = ()) -> FrozenSet[EntityPair]:
        """Convenience wrapper building the :class:`Evidence` object for you."""
        return self.match(store, Evidence.of(positive, negative))

    @property
    def is_probabilistic(self) -> bool:
        """Whether the matcher is a Type-II (probabilistic) matcher."""
        return isinstance(self, TypeIIMatcher)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class TypeIIMatcher(TypeIMatcher):
    """Probabilistic black-box matcher.

    The output of :meth:`match` is the most likely match set (conditioned on
    the evidence); :meth:`log_score` evaluates the unnormalised
    log-probability of an arbitrary set, which must be cheap.
    """

    @abc.abstractmethod
    def log_score(self, store: EntityStore,
                  matches: Iterable[EntityPair]) -> float:
        """Unnormalised log-probability of ``matches`` over the entities of ``store``."""

    def score_delta(self, store: EntityStore, base: Iterable[EntityPair],
                    added: Iterable[EntityPair]) -> float:
        """log P(base ∪ added) − log P(base).

        The default computes two full scores; concrete matchers override this
        with an incremental computation (the MLN matcher touches only the
        groundings around ``added``).
        """
        base_set = frozenset(base)
        combined = base_set | frozenset(added)
        return self.log_score(store, combined) - self.log_score(store, base_set)

    def accepts(self, store: EntityStore, base: Iterable[EntityPair],
                added: Iterable[EntityPair]) -> bool:
        """MMP step-7 test: does adding ``added`` not decrease the probability?"""
        return self.score_delta(store, base, added) >= -1e-9
