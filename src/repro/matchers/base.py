"""Black-box matcher abstractions (Section 3 of the paper).

* :class:`TypeIMatcher` — a deterministic matcher: a function from an entity
  collection plus positive/negative evidence sets to a set of matches
  (Definition 1).  Any entity matcher can be wrapped this way.
* :class:`TypeIIMatcher` — a probabilistic matcher: additionally exposes the
  (unnormalised log-)probability of an arbitrary match set, so the framework
  can perform the cheap score comparisons MMP's step 7 needs (Definition 5).

A matcher is *well-behaved* (Definition 4) when it is idempotent and monotone;
Type-II matchers should additionally be supermodular (Definition 6) for MMP's
soundness guarantee.  The property checkers in
:mod:`repro.matchers.properties` test these empirically on small instances.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, Optional

from ..datamodel import EntityPair, EntityStore, Evidence


class WarmStartCache:
    """Small LRU of ``(evidence, result)`` entries for warm-started matchers.

    A matcher that is idempotent and monotone (Definition 4) may seed a new
    run with any previous result whose evidence was *compatible*: positive
    evidence a subset of the current call's, negative evidence identical —
    then the old result is contained in the new one and seeding it is sound.

    The cache keeps a handful of entries in LRU order with refresh-on-use, so
    the common message-passing pattern survives: the main call on evidence
    ``M`` stays cached while the ``k`` maximal-message probes (evidence
    ``M ∪ {p}``, mutually incompatible) each warm-start from it without
    evicting it.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 3):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Most-recently-used first: (positive, negative, result).
        self._entries: list = []

    def lookup(self, positive: FrozenSet[EntityPair],
               negative: FrozenSet[EntityPair]) -> Optional[FrozenSet[EntityPair]]:
        """Largest compatible cached result, refreshed to the LRU front."""
        best_index = -1
        best_size = -1
        for index, (cached_pos, cached_neg, result) in enumerate(self._entries):
            if cached_neg == negative and cached_pos <= positive \
                    and len(result) > best_size:
                best_index = index
                best_size = len(result)
        if best_index < 0:
            return None
        entry = self._entries.pop(best_index)
        self._entries.insert(0, entry)
        return entry[2]

    def store(self, positive: FrozenSet[EntityPair],
              negative: FrozenSet[EntityPair],
              result: FrozenSet[EntityPair]) -> None:
        """Record a result at the LRU front, evicting beyond capacity."""
        self._entries.insert(0, (positive, negative, result))
        del self._entries[self.capacity:]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class TypeIMatcher(abc.ABC):
    """Deterministic black-box entity matcher."""

    #: Human-readable name used in reports and experiment tables.
    name: str = "matcher"

    #: Whether :meth:`match` accepts a ``warm_start`` keyword — a set of pairs
    #: known to be contained in the answer (typically a previous result under
    #: a subset of the current evidence).  The runner and the grid executor
    #: feature-detect on this to thread prior-round results through.
    supports_warm_start: bool = False

    @abc.abstractmethod
    def match(self, store: EntityStore,
              evidence: Optional[Evidence] = None) -> FrozenSet[EntityPair]:
        """Return the matches for the entities in ``store`` given ``evidence``.

        ``evidence.positive`` pairs must be honoured as known matches,
        ``evidence.negative`` pairs must never be returned.  The output is a
        set of canonical :class:`EntityPair` values over entities of
        ``store``.
        """

    def match_pairs(self, store: EntityStore,
                    positive: Iterable[EntityPair] = (),
                    negative: Iterable[EntityPair] = ()) -> FrozenSet[EntityPair]:
        """Convenience wrapper building the :class:`Evidence` object for you."""
        return self.match(store, Evidence.of(positive, negative))

    @property
    def is_probabilistic(self) -> bool:
        """Whether the matcher is a Type-II (probabilistic) matcher."""
        return isinstance(self, TypeIIMatcher)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class TypeIIMatcher(TypeIMatcher):
    """Probabilistic black-box matcher.

    The output of :meth:`match` is the most likely match set (conditioned on
    the evidence); :meth:`log_score` evaluates the unnormalised
    log-probability of an arbitrary set, which must be cheap.
    """

    @abc.abstractmethod
    def log_score(self, store: EntityStore,
                  matches: Iterable[EntityPair]) -> float:
        """Unnormalised log-probability of ``matches`` over the entities of ``store``."""

    def score_delta(self, store: EntityStore, base: Iterable[EntityPair],
                    added: Iterable[EntityPair]) -> float:
        """log P(base ∪ added) − log P(base).

        The default computes two full scores; concrete matchers override this
        with an incremental computation (the MLN matcher touches only the
        groundings around ``added``).
        """
        base_set = frozenset(base)
        combined = base_set | frozenset(added)
        return self.log_score(store, combined) - self.log_score(store, base_set)

    def accepts(self, store: EntityStore, base: Iterable[EntityPair],
                added: Iterable[EntityPair]) -> bool:
        """MMP step-7 test: does adding ``added`` not decrease the probability?"""
        return self.score_delta(store, base, added) >= -1e-9
