"""Command-line interface.

A small CLI that exposes the common pipeline without writing any Python::

    repro-em generate --preset hepth --scale 0.25 --output data.json
    repro-em cover    --dataset data.json
    repro-em match    --dataset data.json --matcher mln --scheme smp --output clusters.json
    repro-em stream-trace --dataset data.json --base-output base.json --trace-output trace.json
    repro-em stream   --dataset base.json --deltas trace.json --verify
    repro-em stream   --dataset base.json --deltas trace.json --durable-dir wal/
    repro-em recover  --durable-dir wal/ --verify
    repro-em serve    --dataset data.json --port 8080
    repro-em serve    --durable-dir wal/ --port 8080
    repro-em info

Every subcommand prints a plain-text report; ``match`` additionally writes the
resolved clusters as JSON when ``--output`` is given and reports
precision/recall against the dataset's ground truth.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import __version__
from .blocking import CanopyBlocker, ParallelCoverBuilder, build_total_cover
from .core import EMFramework
from .core.framework import STORE_BACKENDS
from .datamodel import CompactStore, MatchSet
from .datasets import (
    BibliographicDataset,
    dblp_big_like,
    dblp_like,
    hepth_like,
    load_dataset,
    save_dataset,
)
from .evaluation import evaluate_cover, format_key_values, format_table, precision_recall_f1
from .exceptions import (
    DurabilityError,
    RecoveryError,
    ServiceError,
    TaskFailedError,
)
from .matchers import MLNMatcher, PairwiseMatcher, RulesMatcher
from .parallel import EXECUTOR_KINDS
from .similarity import available as available_similarities

_PRESETS = {
    "hepth": hepth_like,
    "dblp": dblp_like,
    "dblp-big": dblp_big_like,
}

_MATCHERS = {
    "mln": MLNMatcher,
    "rules": RulesMatcher,
    "pairwise": PairwiseMatcher,
}

#: Exit codes of the typed failures the CLI turns into one-line messages.
EXIT_TASK_FAILED = 4
EXIT_RECOVERY_FAILED = 5
EXIT_DURABILITY_ERROR = 6
EXIT_SERVICE_ERROR = 7


def _add_kernel_argument(subparser: argparse.ArgumentParser) -> None:
    """The batch-kernel backend flag shared by the scoring subcommands."""
    from .kernels import VALID_CHOICES
    subparser.add_argument(
        "--kernel-backend", choices=list(VALID_CHOICES), default=None,
        help="batch scoring kernel backend: 'numpy' requires the "
             "[speed] extra, 'python' forces the scalar reference "
             "paths, 'auto' probes (default; scores are byte-identical "
             "either way)")


def _add_trace_argument(subparser: argparse.ArgumentParser) -> None:
    """The structured-tracing flag shared by the pipeline subcommands."""
    subparser.add_argument(
        "--trace-out", type=Path, default=None, metavar="PATH",
        help="record structured spans for the whole command (blocking, "
             "grid rounds, worker tasks, inference, WAL, ...) and write "
             "them to this JSONL file; summarize with 'repro-em "
             "trace-report PATH'")


def _add_fault_arguments(subparser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by the grid-running subcommands."""
    subparser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and retry any grid task running longer than this "
             "(fault-tolerant supervision; default: no deadline)")
    subparser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry a failed grid task up to N times with exponential "
             "backoff before degrading it to an inline run (enables "
             "fault-tolerant supervision; default policy retries 2)")
    subparser.add_argument(
        "--speculate", action="store_true",
        help="launch speculative duplicates of straggler grid tasks "
             "(first result wins; match sets are unchanged)")


def _fault_policy(args: argparse.Namespace):
    """Build a FaultPolicy from the CLI flags, or None when none were given."""
    if args.task_timeout is None and args.retries is None \
            and not args.speculate:
        return None
    if args.task_timeout is not None and args.task_timeout <= 0:
        raise SystemExit("--task-timeout must be positive")
    if args.retries is not None and args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    from .parallel import FaultPolicy
    kwargs = {"speculate": args.speculate}
    if args.task_timeout is not None:
        kwargs["task_timeout"] = args.task_timeout
    if args.retries is not None:
        kwargs["retries"] = args.retries
    return FaultPolicy(**kwargs)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-em",
        description="Scalable collective entity matching (PVLDB 2011 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic labelled dataset")
    generate.add_argument("--preset", choices=sorted(_PRESETS), default="hepth")
    generate.add_argument("--scale", type=float, default=0.25,
                          help="size multiplier of the preset (default 0.25)")
    generate.add_argument("--seed", type=int, default=None, help="override the preset seed")
    generate.add_argument("--output", type=Path, required=True, help="JSON file to write")

    cover = subparsers.add_parser("cover", help="build and evaluate a total cover")
    cover.add_argument("--dataset", type=Path, required=True)
    cover.add_argument("--loose", type=float, default=0.78, help="canopy loose threshold")
    cover.add_argument("--tight", type=float, default=0.92, help="canopy tight threshold")
    cover.add_argument("--blocking-workers", type=int, default=None,
                       help="build the cover through the parallel cover "
                            "pipeline with this many workers (process pool); "
                            "the cover is identical to the serial build")
    cover.add_argument("--store-backend", choices=list(STORE_BACKENDS),
                       default="dict",
                       help="storage backend the cover is built against; "
                            "'compact' snapshots the store into interned "
                            "flat arrays (the cover is identical)")
    _add_kernel_argument(cover)
    _add_trace_argument(cover)

    match = subparsers.add_parser("match", help="run a matcher under a message-passing scheme")
    match.add_argument("--dataset", type=Path, required=True)
    match.add_argument("--matcher", choices=sorted(_MATCHERS), default="mln")
    match.add_argument("--scheme", choices=["no-mp", "smp", "mmp", "full"], default="smp")
    match.add_argument("--executor", choices=list(EXECUTOR_KINDS), default=None,
                       help="run through the round-based grid executor with this "
                            "map-phase engine (not available with --scheme full); "
                            "omit for the plain sequential scheme")
    match.add_argument("--workers", type=int, default=None,
                       help="pool size for --executor threads/processes")
    match.add_argument("--blocking-workers", type=int, default=None,
                       help="build the total cover through the parallel cover "
                            "pipeline with this many workers (process pool)")
    match.add_argument("--store-backend", choices=list(STORE_BACKENDS),
                       default="dict",
                       help="storage backend: 'dict' is the reference "
                            "EntityStore, 'compact' snapshots it into "
                            "interned flat arrays with zero-copy "
                            "neighborhood views (match sets are identical)")
    match.add_argument("--output", type=Path, default=None,
                       help="write resolved clusters to this JSON file")
    _add_kernel_argument(match)
    _add_trace_argument(match)
    _add_fault_arguments(match)

    trace = subparsers.add_parser(
        "stream-trace",
        help="synthesise a streaming scenario (base dataset + delta trace) "
             "from a dataset")
    trace.add_argument("--dataset", type=Path, required=True,
                       help="the *final* instance the stream converges to")
    trace.add_argument("--batches", type=int, default=10)
    trace.add_argument("--holdout", type=float, default=0.3,
                       help="fraction of entities streamed in via deltas")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--no-churn", action="store_true",
                       help="pure insertion stream (no transient "
                            "entities/edges/tuples)")
    trace.add_argument("--base-output", type=Path, required=True,
                       help="JSON file for the base dataset")
    trace.add_argument("--trace-output", type=Path, required=True,
                       help="JSON file for the delta trace")

    stream = subparsers.add_parser(
        "stream", help="replay a delta trace against a standing match set")
    stream.add_argument("--dataset", type=Path, required=True,
                        help="the base instance the session starts from")
    stream.add_argument("--deltas", type=Path, required=True,
                        help="delta trace produced by stream-trace")
    stream.add_argument("--matcher", choices=sorted(_MATCHERS), default="mln")
    stream.add_argument("--executor", choices=list(EXECUTOR_KINDS), default=None,
                        help="map-phase engine for the dirty-neighborhood "
                             "rounds (default serial)")
    stream.add_argument("--workers", type=int, default=None)
    stream.add_argument("--store-backend", choices=list(STORE_BACKENDS),
                        default="dict",
                        help="backend of the base snapshot the overlay "
                             "layers deltas over")
    stream.add_argument("--rebase-threshold", type=int, default=5000,
                        help="overlay size at which the session rebases onto "
                             "a fresh snapshot")
    stream.add_argument("--verify", action="store_true",
                        help="after the replay, cold-match the final "
                             "instance and require byte-identical matches")
    stream.add_argument("--durable-dir", type=Path, default=None,
                        help="run the session durably: write-ahead-log every "
                             "batch to this directory and checkpoint "
                             "periodically (see the recover subcommand)")
    stream.add_argument("--checkpoint-every", type=int, default=8,
                        help="batches between snapshot checkpoints when "
                             "--durable-dir is given (0 disables periodic "
                             "checkpoints)")
    stream.add_argument("--checkpoint-on-signal", action="store_true",
                        help="with --durable-dir: on SIGTERM/SIGINT finish "
                             "the in-flight batch, write a final checkpoint "
                             "and exit cleanly")
    stream.add_argument("--output", type=Path, default=None,
                        help="write final resolved clusters to this JSON file")
    _add_kernel_argument(stream)
    _add_trace_argument(stream)
    _add_fault_arguments(stream)

    recover = subparsers.add_parser(
        "recover",
        help="rebuild a durable streaming session after a crash "
             "(latest checkpoint + WAL tail replay)")
    recover.add_argument("--durable-dir", type=Path, required=True,
                         help="directory a durable stream session wrote "
                              "(WAL + checkpoints)")
    recover.add_argument("--executor", choices=list(EXECUTOR_KINDS),
                         default=None,
                         help="map-phase engine for the replayed batches")
    recover.add_argument("--workers", type=int, default=None)
    recover.add_argument("--verify", action="store_true",
                         help="after recovery, cold-match the recovered "
                              "instance and require byte-identical matches")
    recover.add_argument("--output", type=Path, default=None,
                         help="write recovered resolved clusters to this "
                              "JSON file")
    _add_kernel_argument(recover)
    _add_trace_argument(recover)
    _add_fault_arguments(recover)

    serve = subparsers.add_parser(
        "serve",
        help="serve the standing match set over HTTP (epoch-snapshot reads, "
             "delta commits, load shedding, read-only degradation)")
    serve.add_argument("--dataset", type=Path, default=None,
                       help="serve a fresh session over this dataset "
                            "(cold SMP run at startup)")
    serve.add_argument("--durable-dir", type=Path, default=None,
                       help="with --dataset: run the served session durably "
                            "(WAL + checkpoints) into this directory; "
                            "without --dataset: recover the session from it "
                            "(readiness is gated until recovery completes)")
    serve.add_argument("--matcher", choices=sorted(_MATCHERS), default="mln")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks a free one; default 8080)")
    serve.add_argument("--executor", choices=list(EXECUTOR_KINDS), default=None,
                       help="map-phase engine for the commit-loop grid rounds")
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="reads executing at once (default 32)")
    serve.add_argument("--max-waiting", type=int, default=64,
                       help="reads queued for a slot before shedding with "
                            "429 (default 64)")
    serve.add_argument("--delta-queue-limit", type=int, default=16,
                       help="delta batches pending commit before writes shed "
                            "(default 16)")
    serve.add_argument("--deadline", type=float, default=5.0,
                       help="default per-read deadline in seconds "
                            "(504 when missed; default 5)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive commit failures that trip the "
                            "service to read-only mode (default 3)")
    serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                       help="seconds in read-only mode before probing one "
                            "commit (default 5)")
    serve.add_argument("--checkpoint-every", type=int, default=8,
                       help="batches between checkpoints when serving "
                            "durably (default 8)")
    serve.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                       help="drain and exit after this long (smoke/CI runs; "
                            "default: serve until SIGTERM/SIGINT)")
    _add_kernel_argument(serve)
    _add_trace_argument(serve)
    _add_fault_arguments(serve)

    trace_report = subparsers.add_parser(
        "trace-report",
        help="summarize a JSONL trace written with --trace-out (top spans "
             "by self-time, per-phase duration histograms)")
    trace_report.add_argument("trace", type=Path,
                              help="trace JSONL file written by --trace-out")
    trace_report.add_argument("--top", type=int, default=15,
                              help="rows in the top-spans table (default 15)")

    subparsers.add_parser("info", help="print version and registered similarity functions")
    return parser


def _load(path: Path) -> BibliographicDataset:
    if not path.exists():
        raise SystemExit(f"dataset file not found: {path}")
    return load_dataset(path)


def _command_generate(args: argparse.Namespace) -> int:
    factory = _PRESETS[args.preset]
    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    dataset = factory(**kwargs)
    path = save_dataset(dataset, args.output)
    print(format_key_values(dataset.stats(), title=f"generated {dataset.name}"))
    print(f"written to {path}")
    return 0


def _command_cover(args: argparse.Namespace) -> int:
    dataset = _load(args.dataset)
    if args.blocking_workers is not None and args.blocking_workers < 1:
        raise SystemExit("--blocking-workers must be >= 1")
    store = dataset.store
    if args.store_backend == "compact":
        store = CompactStore.from_store(store)
    blocker = CanopyBlocker(loose_threshold=args.loose, tight_threshold=args.tight)
    if args.blocking_workers is not None:
        builder = ParallelCoverBuilder(blocker, executor="processes",
                                       workers=args.blocking_workers,
                                       relation_names=["coauthor"])
        cover = builder.build_total_cover(store)
    else:
        cover = build_total_cover(blocker, store, relation_names=["coauthor"])
    print(format_key_values(cover.stats(), title="cover"))
    report = evaluate_cover(cover, dataset.true_matches(),
                            entity_count=len(dataset.store.entity_ids()))
    print(format_key_values(report.as_dict(), title="blocking quality"))
    return 0


def _command_match(args: argparse.Namespace) -> int:
    dataset = _load(args.dataset)
    matcher = _MATCHERS[args.matcher]()
    if args.blocking_workers is not None and args.blocking_workers < 1:
        raise SystemExit("--blocking-workers must be >= 1")
    framework = EMFramework(matcher, dataset.store,
                            blocker=CanopyBlocker(), relation_names=["coauthor"],
                            blocking_workers=args.blocking_workers,
                            store_backend=args.store_backend)
    if args.scheme == "mmp" and not matcher.is_probabilistic:
        raise SystemExit(f"matcher {args.matcher!r} is not probabilistic; "
                         "mmp requires a Type-II matcher")
    if args.workers is not None:
        if args.executor is None:
            raise SystemExit("--workers requires --executor")
        if args.workers < 1:
            raise SystemExit("--workers must be >= 1")
    fault_policy = _fault_policy(args)
    if fault_policy is not None and args.executor is None:
        raise SystemExit("--task-timeout/--retries/--speculate supervise the "
                         "grid executor; they require --executor")
    if args.executor is not None:
        if args.scheme == "full":
            raise SystemExit("--executor runs the round-based grid; "
                             "it does not apply to --scheme full")
        result = framework.run_grid(args.scheme, executor=args.executor,
                                    workers=args.workers,
                                    fault_policy=fault_policy).to_scheme_result()
    else:
        result = framework.run(args.scheme)

    closed = MatchSet(result.matches).transitive_closure()
    metrics = precision_recall_f1(closed.pairs, dataset.true_matches())
    rows = [{
        "matcher": args.matcher,
        "scheme": result.scheme,
        "matches": len(result.matches),
        "precision": round(metrics.precision, 3),
        "recall": round(metrics.recall, 3),
        "f1": round(metrics.f1, 3),
        "seconds": round(result.elapsed_seconds, 2),
        "neighborhood_runs": result.neighborhood_runs,
    }]
    print(format_table(rows, title=f"{dataset.name}: {args.matcher} under {args.scheme}"))

    if args.output is not None:
        _write_clusters(result.matches, args.output)
    return 0


def _command_stream_trace(args: argparse.Namespace) -> int:
    from .streaming import save_delta_log, synthesize_stream
    dataset = _load(args.dataset)
    if args.batches < 1:
        raise SystemExit("--batches must be >= 1")
    if not 0.0 < args.holdout < 1.0:
        raise SystemExit("--holdout must be in (0, 1)")
    scenario = synthesize_stream(dataset, batches=args.batches,
                                 holdout_fraction=args.holdout,
                                 seed=args.seed, churn=not args.no_churn)
    base_path = save_dataset(scenario.base, args.base_output)
    trace_path = save_delta_log(scenario.log, args.trace_output)
    print(format_key_values({
        "final_entities": len(dataset.store.entity_ids()),
        "base_entities": len(scenario.base.store.entity_ids()),
        "batches": len(scenario.log),
        "delta_ops": scenario.log.op_count(),
    }, title="stream scenario"))
    print(f"base dataset written to {base_path}")
    print(f"delta trace written to {trace_path}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    from .streaming import StreamSession, load_delta_log
    if args.workers is not None and args.executor is None:
        raise SystemExit("--workers requires --executor")
    if args.checkpoint_every < 0:
        raise SystemExit("--checkpoint-every must be >= 0")
    if args.checkpoint_on_signal and args.durable_dir is None:
        raise SystemExit("--checkpoint-on-signal requires --durable-dir")
    dataset = _load(args.dataset)
    if not args.deltas.exists():
        raise SystemExit(f"delta trace file not found: {args.deltas}")
    log = load_delta_log(args.deltas)
    store = dataset.store
    if args.store_backend == "compact":
        store = CompactStore.from_store(store)
    matcher = _MATCHERS[args.matcher]()
    session = StreamSession(matcher, store,
                            blocker=CanopyBlocker(),
                            relation_names=["coauthor"],
                            executor=args.executor, workers=args.workers,
                            rebase_threshold=args.rebase_threshold,
                            fault_policy=_fault_policy(args))
    if args.durable_dir is not None:
        from .durability import DurableStreamSession
        session = DurableStreamSession(
            session, args.durable_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_on_signal=args.checkpoint_on_signal)
    cold = session.start()
    rows = [{
        "batch": "start",
        "ops": 0,
        "reran": f"{cold.reran_neighborhoods}/{cold.total_neighborhoods}",
        "frac": round(cold.reran_fraction, 3),
        "added": len(cold.added),
        "retracted": 0,
        "matches": len(cold.matches),
        "seconds": round(cold.elapsed_seconds, 3),
    }]
    for batch in log:
        result = session.apply(batch)
        rows.append({
            "batch": result.batch_index,
            "ops": result.ops,
            "reran": f"{result.reran_neighborhoods}/{result.total_neighborhoods}",
            "frac": round(result.reran_fraction, 3),
            "added": len(result.added),
            "retracted": len(result.retracted),
            "matches": len(result.matches),
            "seconds": round(result.elapsed_seconds, 3),
        })
    print(format_table(rows, title=f"{dataset.name}: replay of {log.name} "
                                   f"({log.op_count()} ops)"))

    if args.durable_dir is not None:
        session.close()
        print(f"durable state (WAL + checkpoints) in {args.durable_dir}")

    if args.verify:
        identical = session.verify()
        verdict = "byte-identical" if identical else "MISMATCH"
        print(f"replay vs cold batch run on the final instance: {verdict}")
        if not identical:
            return 1

    _write_clusters(session.matches, args.output)
    return 0


def _command_recover(args: argparse.Namespace) -> int:
    import time

    from .durability import DurableStreamSession
    # A missing/empty directory surfaces as the typed RecoveryError from
    # DurableStreamSession.recover (exit code 5), naming the path.
    if args.workers is not None and args.executor is None:
        raise SystemExit("--workers requires --executor")
    started = time.perf_counter()
    session = DurableStreamSession.recover(args.durable_dir,
                                           executor=args.executor,
                                           workers=args.workers,
                                           fault_policy=_fault_policy(args))
    elapsed = time.perf_counter() - started
    print(format_key_values({
        "batches_applied": session.batches_applied,
        "matches": len(session.matches),
        "recovery_seconds": round(elapsed, 3),
    }, title=f"recovered session from {args.durable_dir}"))

    if args.verify:
        identical = session.verify()
        verdict = "byte-identical" if identical else "MISMATCH"
        print(f"recovered state vs cold batch run: {verdict}")
        if not identical:
            return 1

    _write_clusters(session.matches, args.output)
    session.close(checkpoint=False)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serving import MatchService, MatchServingHTTPServer, ServiceConfig
    if args.dataset is None and args.durable_dir is None:
        raise SystemExit("serve needs --dataset (fresh session) or "
                         "--durable-dir (crash recovery), or both "
                         "(durable serving)")
    if args.workers is not None and args.executor is None:
        raise SystemExit("--workers requires --executor")
    if args.duration is not None and args.duration <= 0:
        raise SystemExit("--duration must be positive")
    config = ServiceConfig(max_inflight=args.max_inflight,
                           max_waiting=args.max_waiting,
                           delta_queue_limit=args.delta_queue_limit,
                           default_deadline=args.deadline,
                           breaker_threshold=args.breaker_threshold,
                           breaker_cooldown=args.breaker_cooldown)
    fault_policy = _fault_policy(args)
    if args.dataset is not None:
        dataset = _load(args.dataset)
        framework = EMFramework(_MATCHERS[args.matcher](), dataset.store,
                                blocker=CanopyBlocker(),
                                relation_names=["coauthor"])
        service = framework.serve(config=config, executor=args.executor,
                                  workers=args.workers,
                                  durable_dir=args.durable_dir,
                                  checkpoint_every=args.checkpoint_every,
                                  fault_policy=fault_policy)
        origin = f"dataset {args.dataset}"
        if args.durable_dir is not None:
            origin += f" (durable in {args.durable_dir})"
    else:
        service = MatchService.recover(args.durable_dir, config=config,
                                       executor=args.executor,
                                       workers=args.workers,
                                       fault_policy=fault_policy)
        origin = f"recovery from {args.durable_dir}"

    # The HTTP frontend comes up first: /health and /ready answer (503)
    # while the cold run / recovery is still in progress.
    server = MatchServingHTTPServer(service, host=args.host, port=args.port)
    server.start()
    service.install_signal_handlers()
    print(f"listening on {server.url} ({origin}); readiness gated until "
          "startup completes")
    try:
        service.start()
    except BaseException:
        server.stop()
        raise
    epoch = service.current_epoch()
    print(format_key_values({
        "epoch": epoch.epoch_id,
        "entities": len(epoch.entity_ids),
        "matches": len(epoch.matches),
        "mode": "read-write",
    }, title="ready"))
    try:
        if service.wait_for_drain_request(args.duration):
            print("drain requested (signal): finishing accepted batches, "
                  "checkpointing, stopping")
        else:
            print(f"--duration {args.duration:g}s elapsed: draining")
        service.drain()
    finally:
        server.stop()
    final = service.metrics()
    print(format_key_values({
        "reads": final["counters"]["reads_total"],
        "commits": final["counters"]["commits_total"],
        "shed": final["counters"]["deltas_shed"]
        + final["admission"]["shed_total"],
        "final_epoch": final["epoch"],
    }, title="stopped cleanly"))
    return 0


def _write_clusters(matches, output: Optional[Path]) -> None:
    """Write the resolved clusters of a match set as JSON (atomically)."""
    if output is None:
        return
    from .atomicio import atomic_write_json
    closed = MatchSet(matches).transitive_closure()
    clusters = [sorted(c) for c in closed.clusters() if len(c) > 1]
    atomic_write_json(output, clusters, indent=1)
    print(f"wrote {len(clusters)} clusters to {output}")


def _command_trace_report(args: argparse.Namespace) -> int:
    from .obs.report import format_report, load_trace, summarize
    if args.top < 1:
        raise SystemExit("--top must be >= 1")
    if not args.trace.exists():
        raise SystemExit(f"trace file not found: {args.trace}")
    spans = load_trace(args.trace)
    print(format_report(summarize(spans), top=args.top))
    return 0


def _command_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    print("presets: " + ", ".join(sorted(_PRESETS)))
    print("matchers: " + ", ".join(sorted(_MATCHERS)))
    print("similarity functions: " + ", ".join(available_similarities()))
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "cover": _command_cover,
    "match": _command_match,
    "stream": _command_stream,
    "stream-trace": _command_stream_trace,
    "recover": _command_recover,
    "serve": _command_serve,
    "trace-report": _command_trace_report,
    "info": _command_info,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    The library's typed operational failures become one-line stderr messages
    with distinct exit codes instead of tracebacks: a grid task that
    exhausted its fault-tolerance budget exits ``4``, a failed crash
    recovery exits ``5``, any other durability violation exits ``6``, a
    serving-layer failure exits ``7``.  Programming errors still
    traceback — those are bugs, not conditions.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "kernel_backend", None) is not None:
        from .exceptions import ExperimentError
        from .kernels import set_backend
        try:
            set_backend(args.kernel_backend)
        except ExperimentError as error:
            print(f"repro-em: {error}", file=sys.stderr)
            return 2
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        from .obs import trace as obs_trace
        obs_trace.enable(trace_out)
    try:
        return _COMMANDS[args.command](args)
    except TaskFailedError as error:
        print(f"repro-em: task failed permanently: {error}", file=sys.stderr)
        return EXIT_TASK_FAILED
    except RecoveryError as error:
        print(f"repro-em: recovery failed: {error}", file=sys.stderr)
        return EXIT_RECOVERY_FAILED
    except DurabilityError as error:
        print(f"repro-em: durability error: {error}", file=sys.stderr)
        return EXIT_DURABILITY_ERROR
    except ServiceError as error:
        print(f"repro-em: service error: {error}", file=sys.stderr)
        return EXIT_SERVICE_ERROR
    finally:
        # The trace is flushed even when the command failed — a trace of
        # the failing run is exactly what one wants to look at.
        if trace_out is not None:
            written = obs_trace.export_jsonl()
            if written is not None:
                print(f"trace written to {written}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
