"""repro: reproduction of "Large-Scale Collective Entity Matching" (PVLDB 2011).

The library scales an arbitrary black-box collective entity matcher to large
datasets by running it on small, overlapping neighborhoods and passing
messages between them (Rastogi, Dalvi, Garofalakis; PVLDB 4(4), 2011).

Typical usage::

    from repro import (
        MLNMatcher, EMFramework, CanopyBlocker, build_total_cover, hepth_like,
    )

    dataset = hepth_like(scale=0.3)
    cover = build_total_cover(CanopyBlocker(), dataset.store)
    framework = EMFramework(MLNMatcher(), dataset.store, cover=cover)
    result = framework.run("mmp")
    print(result.match_set.clusters())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from .blocking import (
    Blocker,
    CanopyBlocker,
    Cover,
    MultiPassBlocker,
    Neighborhood,
    SortedNeighborhoodBlocker,
    StandardBlocker,
    TokenBlocker,
    build_total_cover,
    expand_to_total_cover,
)
from .core import (
    EMFramework,
    FullRun,
    MaximalMessagePassing,
    MaximalMessageSet,
    NoMessagePassing,
    SchemeResult,
    SimpleMessagePassing,
    UpperBoundScheme,
    compute_maximal_messages,
)
from .datamodel import (
    Entity,
    EntityPair,
    EntityStore,
    Evidence,
    MatchSet,
    Relation,
    make_author,
    make_paper,
)
from .datasets import (
    BibliographicDataset,
    BibliographyGenerator,
    GeneratorConfig,
    dblp_big_like,
    dblp_like,
    dblp_tiny,
    hepth_like,
    hepth_tiny,
    load_dataset,
    save_dataset,
)
from .evaluation import (
    ExperimentRunner,
    precision_recall_f1,
    soundness_completeness,
)
from .matchers import (
    IterativeMatcher,
    MLNMatcher,
    PairwiseMatcher,
    RulesMatcher,
    TypeIIMatcher,
    TypeIMatcher,
    check_well_behaved,
)
from .mln import MarkovLogicNetwork, paper_author_rules
from .parallel import GridExecutor, GridRunResult
from .streaming import (
    ChangeBatch,
    DeltaLog,
    StoreOverlay,
    StreamSession,
    load_delta_log,
    save_delta_log,
    synthesize_stream,
)

__version__ = "1.0.0"

__all__ = [
    "BibliographicDataset",
    "BibliographyGenerator",
    "Blocker",
    "CanopyBlocker",
    "ChangeBatch",
    "Cover",
    "DeltaLog",
    "EMFramework",
    "Entity",
    "EntityPair",
    "EntityStore",
    "Evidence",
    "ExperimentRunner",
    "FullRun",
    "GeneratorConfig",
    "GridExecutor",
    "GridRunResult",
    "IterativeMatcher",
    "MLNMatcher",
    "MarkovLogicNetwork",
    "MatchSet",
    "MaximalMessagePassing",
    "MaximalMessageSet",
    "MultiPassBlocker",
    "Neighborhood",
    "NoMessagePassing",
    "PairwiseMatcher",
    "Relation",
    "RulesMatcher",
    "SchemeResult",
    "SimpleMessagePassing",
    "SortedNeighborhoodBlocker",
    "StandardBlocker",
    "StoreOverlay",
    "StreamSession",
    "TokenBlocker",
    "TypeIIMatcher",
    "TypeIMatcher",
    "UpperBoundScheme",
    "build_total_cover",
    "check_well_behaved",
    "compute_maximal_messages",
    "dblp_big_like",
    "dblp_like",
    "dblp_tiny",
    "expand_to_total_cover",
    "hepth_like",
    "hepth_tiny",
    "load_dataset",
    "load_delta_log",
    "save_delta_log",
    "synthesize_stream",
    "make_author",
    "make_paper",
    "paper_author_rules",
    "precision_recall_f1",
    "save_dataset",
    "soundness_completeness",
    "__version__",
]
