"""Compact columnar storage backend: interned ids, flat arrays, lazy views.

The dict-based :class:`~repro.datamodel.store.EntityStore` is the reference
container, but its ``restrict()`` deep-materialises an induced store (entities,
relations, similarity edges) for every neighborhood in every round, and the
grid executor pickles each of those restricted stores to worker processes.
This module provides the compact alternative:

* :class:`EntityInterner` — a bijection between entity-id strings and dense
  integer indices; every other structure here speaks integers internally and
  decodes at the edge.
* :class:`CompactRelation` — a relation stored as one flat, sorted array of
  int-encoded tuples plus a CSR adjacency (entity index → indices of the
  tuples touching it).  It implements the read API of
  :class:`~repro.datamodel.relation.Relation` and adds integer-space
  traversals used by boundary expansion and view materialisation.
* :class:`CompactStore` — an immutable snapshot of a whole EM instance:
  entity list, interner, compact relations, and the similarity edges as
  parallel flat arrays (pairs / scores / levels) with their own CSR adjacency.
  ``restrict()`` is O(subset): it returns a :class:`StoreView`, never copies.
* :class:`StoreView` — a lazy window over an id-subset of a snapshot.  It
  implements the :class:`EntityStore` *read* interface; similarity reads
  resolve directly through the snapshot's shared arrays, and induced
  relations are materialised lazily (per relation, on first access, via the
  CSR adjacency — so a neighborhood only ever pays for the relations its
  matcher actually reads).

Snapshots carry a process-unique ``snapshot_token`` so the parallel layer can
broadcast one pickled copy per worker and ship only integer neighborhood
member lists per task (see :mod:`repro.parallel.shared`).

Parity with the dict backend — identical entities, induced relations,
similarity edges and final match sets — is asserted by
``tests/test_compact_store.py``.
"""

from __future__ import annotations

import uuid
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..exceptions import UnknownEntityError, UnknownRelationError
from .entity import Entity
from .pair import EntityPair
from .relation import Relation, RelationTuple
from .store import EntityStore, SimilarityEdge

#: An int-encoded relation tuple.
IndexTuple = Tuple[int, ...]
#: An int-encoded similarity pair in canonical ``(min_index, max_index)`` order.
IndexPair = Tuple[int, int]


class EntityInterner:
    """Bijection between entity-id strings and dense integer indices."""

    __slots__ = ("_ids", "_index")

    def __init__(self, ids: Iterable[str]):
        self._ids: List[str] = list(ids)
        self._index: Dict[str, int] = {
            entity_id: index for index, entity_id in enumerate(self._ids)}
        if len(self._index) != len(self._ids):
            raise ValueError("duplicate entity ids cannot be interned")

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._index

    def index_of(self, entity_id: str) -> int:
        try:
            return self._index[entity_id]
        except KeyError:
            raise UnknownEntityError(entity_id) from None

    def id_of(self, index: int) -> str:
        return self._ids[index]

    def indices_of(self, entity_ids: Iterable[str]) -> List[int]:
        index = self._index
        try:
            return [index[entity_id] for entity_id in entity_ids]
        except KeyError as missing:
            raise UnknownEntityError(missing.args[0]) from None

    def ids_of(self, indices: Iterable[int]) -> List[str]:
        ids = self._ids
        return [ids[index] for index in indices]

    def ids(self) -> List[str]:
        """All interned ids in index order (do not mutate)."""
        return self._ids


class CompactRelation:
    """A relation as flat int-encoded tuples with CSR adjacency.

    Implements the read interface of
    :class:`~repro.datamodel.relation.Relation` (decoding to strings at the
    edge) plus integer-space traversals.  Immutable: built once from a
    relation's tuples against a fixed :class:`EntityInterner`.
    """

    __slots__ = ("name", "arity", "symmetric", "interner",
                 "_tuples", "_tuple_set", "_indptr", "_adj", "_decoded")

    def __init__(self, name: str, arity: int, symmetric: bool,
                 interner: EntityInterner,
                 tuples: Iterable[Sequence[str]]):
        if arity < 1:
            raise ValueError("relation arity must be >= 1")
        if symmetric and arity != 2:
            raise ValueError("symmetric relations must be binary")
        self.name = name
        self.arity = arity
        self.symmetric = symmetric
        self.interner = interner
        encoded: Set[IndexTuple] = set()
        for tup in tuples:
            encoded.add(self._encode(tup))
        self._tuples: List[IndexTuple] = sorted(encoded)
        self._tuple_set: Set[IndexTuple] = encoded
        self._indptr, self._adj = self._build_adjacency()
        self._decoded: Optional[FrozenSet[RelationTuple]] = None

    # ------------------------------------------------------------- encoding
    def _encode(self, tup: Sequence[str]) -> IndexTuple:
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name!r} has arity {self.arity}, "
                f"got tuple of length {len(tup)}")
        encoded = tuple(self.interner.index_of(entity_id) for entity_id in tup)
        if self.symmetric:
            # Canonical order must match Relation's *string* canonicalisation;
            # index order follows insertion, not lexicographic id order.
            if tup[0] > tup[1]:
                encoded = (encoded[1], encoded[0])
        return encoded

    def _decode(self, tup: IndexTuple) -> RelationTuple:
        ids = self.interner.ids_of(tup)
        return tuple(ids)

    def _build_adjacency(self) -> Tuple[List[int], List[int]]:
        counts = [0] * len(self.interner)
        for tup in self._tuples:
            for entity_index in set(tup):
                counts[entity_index] += 1
        indptr = [0] * (len(counts) + 1)
        for index, count in enumerate(counts):
            indptr[index + 1] = indptr[index] + count
        adj = [0] * indptr[-1]
        cursor = list(indptr[:-1])
        for tuple_index, tup in enumerate(self._tuples):
            for entity_index in set(tup):
                adj[cursor[entity_index]] = tuple_index
                cursor[entity_index] += 1
        return indptr, adj

    # ---------------------------------------------------------- Relation API
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[RelationTuple]:
        for tup in self._tuples:
            yield self._decode(tup)

    def __contains__(self, tup: Sequence[str]) -> bool:
        return self.contains(*tup)

    def contains(self, *entity_ids: str) -> bool:
        if any(entity_id not in self.interner for entity_id in entity_ids):
            return False
        return self._encode(entity_ids) in self._tuple_set

    def tuples(self) -> FrozenSet[RelationTuple]:
        if self._decoded is None:
            self._decoded = frozenset(self._decode(tup) for tup in self._tuples)
        return self._decoded

    def tuples_of(self, entity_id: str) -> FrozenSet[RelationTuple]:
        if entity_id not in self.interner:
            return frozenset()
        return frozenset(self._decode(self._tuples[tuple_index])
                         for tuple_index in self.tuple_indices_of(
                             self.interner.index_of(entity_id)))

    def neighbors(self, entity_id: str) -> Set[str]:
        if entity_id not in self.interner:
            return set()
        entity_index = self.interner.index_of(entity_id)
        out: Set[int] = set()
        for tuple_index in self.tuple_indices_of(entity_index):
            out.update(self._tuples[tuple_index])
        out.discard(entity_index)
        return set(self.interner.ids_of(out))

    def participants(self) -> Set[str]:
        indptr = self._indptr
        return {self.interner.id_of(index)
                for index in range(len(self.interner))
                if indptr[index + 1] > indptr[index]}

    def tuples_touching(self, entity_ids: Iterable[str]) -> Iterator[RelationTuple]:
        """Tuples with at least one member in ``entity_ids`` (may yield dups)."""
        members = entity_ids if isinstance(entity_ids, (set, frozenset)) \
            else set(entity_ids)
        known = [self.interner.index_of(m) for m in members if m in self.interner]
        if len(known) <= len(self._tuples):
            for entity_index in known:
                for tuple_index in self.tuple_indices_of(entity_index):
                    yield self._decode(self._tuples[tuple_index])
        else:
            member_indices = set(known)
            for tup in self._tuples:
                if not member_indices.isdisjoint(tup):
                    yield self._decode(tup)

    def induced(self, entity_ids: Iterable[str]) -> Relation:
        """``R(C)`` as a plain (dict-backed) :class:`Relation`."""
        allowed = {self.interner.index_of(entity_id)
                   for entity_id in entity_ids if entity_id in self.interner}
        return self.induced_relation(allowed)

    def copy(self) -> Relation:
        """A mutable dict-backed copy (compact relations are immutable)."""
        clone = Relation(self.name, self.arity, self.symmetric)
        for tup in self:
            clone.add(*tup)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (CompactRelation, Relation)):
            return NotImplemented
        return (self.name == other.name
                and self.arity == other.arity
                and self.symmetric == other.symmetric
                and self.tuples() == other.tuples())

    def __hash__(self) -> int:  # pragma: no cover - relations rarely hashed
        return hash((self.name, self.arity, self.symmetric))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompactRelation({self.name!r}, arity={self.arity}, "
                f"tuples={len(self._tuples)})")

    # ---------------------------------------------------------- integer API
    def tuple_indices_of(self, entity_index: int) -> Sequence[int]:
        """Indices (into the flat tuple array) of tuples touching the entity."""
        return self._adj[self._indptr[entity_index]:self._indptr[entity_index + 1]]

    def tuple_at(self, tuple_index: int) -> IndexTuple:
        return self._tuples[tuple_index]

    def member_indices_touching(self, frontier: Set[int]) -> Set[int]:
        """All entity indices of tuples touching ``frontier`` (frontier included).

        This is the integer-space core of boundary expansion: one CSR walk
        over whichever side is smaller, no string re-keying.
        """
        out: Set[int] = set()
        if len(frontier) <= len(self._tuples):
            tuples = self._tuples
            for entity_index in frontier:
                for tuple_index in self.tuple_indices_of(entity_index):
                    out.update(tuples[tuple_index])
        else:
            for tup in self._tuples:
                if not frontier.isdisjoint(tup):
                    out.update(tup)
        return out

    def induced_tuple_indices(self, members: Set[int]) -> List[int]:
        """Sorted indices of tuples lying entirely inside ``members``."""
        candidates: Set[int] = set()
        if len(members) <= len(self._tuples):
            for entity_index in members:
                candidates.update(self.tuple_indices_of(entity_index))
            tuples = self._tuples
            return sorted(
                tuple_index for tuple_index in candidates
                if all(e in members for e in tuples[tuple_index]))
        return [tuple_index for tuple_index, tup in enumerate(self._tuples)
                if all(e in members for e in tup)]

    def induced_relation(self, members: Set[int]) -> Relation:
        """``R(C)`` for an integer member set, as a dict-backed Relation."""
        induced = Relation(self.name, self.arity, self.symmetric)
        for tuple_index in self.induced_tuple_indices(members):
            induced.add(*self._decode(self._tuples[tuple_index]))
        return induced


class CompactStore:
    """Immutable columnar snapshot of an EM instance.

    Exposes the read interface of :class:`EntityStore`; mutation methods
    raise.  Build one from a populated dict store via :meth:`from_store`, or
    directly from entities / relations / similarity edges.  ``restrict()``
    returns a zero-copy :class:`StoreView`.
    """

    def __init__(self, entities: Iterable[Entity] = (),
                 relations: Iterable[Union[Relation, CompactRelation]] = (),
                 similarity_edges: Iterable = ()):
        self._entities: List[Entity] = list(entities)
        self.interner = EntityInterner(e.entity_id for e in self._entities)
        self._by_type: Dict[str, List[int]] = {}
        for index, entity in enumerate(self._entities):
            self._by_type.setdefault(entity.entity_type, []).append(index)
        self._relations: Dict[str, CompactRelation] = {}
        for relation in relations:
            self._relations[relation.name] = CompactRelation(
                relation.name, relation.arity, relation.symmetric,
                self.interner, sorted(relation.tuples()))
        # Similarity edges as parallel flat arrays, sorted by index pair.
        triples: List[Tuple[IndexPair, float, int]] = []
        for edge in similarity_edges:
            if isinstance(edge, SimilarityEdge):
                pair, score, level = edge.pair, edge.score, edge.level
            else:
                pair, score, level = edge
                pair = EntityPair.coerce(pair)
            first = self.interner.index_of(pair.first)
            second = self.interner.index_of(pair.second)
            key = (first, second) if first < second else (second, first)
            # Validate score/level through the edge dataclass once, at build.
            SimilarityEdge(pair, score, level)
            triples.append((key, score, level))
        triples.sort(key=lambda item: item[0])
        self._edge_pairs: List[IndexPair] = [key for key, _, _ in triples]
        self._edge_scores: List[float] = [score for _, score, _ in triples]
        self._edge_levels: List[int] = [level for _, _, level in triples]
        self._edge_index: Dict[IndexPair, int] = {
            key: index for index, key in enumerate(self._edge_pairs)}
        if len(self._edge_index) != len(self._edge_pairs):
            raise ValueError("duplicate similarity edges in snapshot input")
        self._edge_indptr, self._edge_adj = self._build_edge_adjacency()
        #: Process-unique token used by the parallel layer to broadcast this
        #: snapshot once per worker (see :mod:`repro.parallel.shared`).
        self.snapshot_token = f"compact-{uuid.uuid4().hex}"
        self._entity_ids: Optional[FrozenSet[str]] = None
        self._similar_pairs: Optional[FrozenSet[EntityPair]] = None
        self._decoded_edges: Optional[List[SimilarityEdge]] = None

    @classmethod
    def from_store(cls, store) -> "CompactStore":
        """Snapshot any store-like object exposing the EntityStore read API."""
        return cls(store.entities(), store.relations(), store.similarity_edges())

    def _build_edge_adjacency(self) -> Tuple[List[int], List[int]]:
        counts = [0] * len(self.interner)
        for first, second in self._edge_pairs:
            counts[first] += 1
            counts[second] += 1
        indptr = [0] * (len(counts) + 1)
        for index, count in enumerate(counts):
            indptr[index + 1] = indptr[index] + count
        adj = [0] * indptr[-1]
        cursor = list(indptr[:-1])
        for edge_index, (first, second) in enumerate(self._edge_pairs):
            adj[cursor[first]] = edge_index
            cursor[first] += 1
            adj[cursor[second]] = edge_index
            cursor[second] += 1
        return indptr, adj

    # --------------------------------------------------------------- entities
    def entity(self, entity_id: str) -> Entity:
        return self._entities[self.interner.index_of(entity_id)]

    def entity_at(self, index: int) -> Entity:
        return self._entities[index]

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self.interner

    def entity_ids(self) -> FrozenSet[str]:
        if self._entity_ids is None:
            self._entity_ids = frozenset(self.interner.ids())
        return self._entity_ids

    def entities(self) -> List[Entity]:
        return list(self._entities)

    def entities_of_type(self, entity_type: str) -> List[Entity]:
        return [self._entities[index]
                for index in self._by_type.get(entity_type, ())]

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self.interner

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities)

    # -------------------------------------------------------------- relations
    def relation(self, name: str) -> CompactRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def relations(self) -> List[CompactRelation]:
        return [self._relations[name] for name in sorted(self._relations)]

    # ------------------------------------------------------------- similarity
    def _edge_key(self, pair: EntityPair) -> Optional[IndexPair]:
        if pair.first not in self.interner or pair.second not in self.interner:
            return None
        first = self.interner.index_of(pair.first)
        second = self.interner.index_of(pair.second)
        return (first, second) if first < second else (second, first)

    def edge_at(self, edge_index: int) -> SimilarityEdge:
        first, second = self._edge_pairs[edge_index]
        pair = EntityPair.of(self.interner.id_of(first),
                             self.interner.id_of(second))
        return SimilarityEdge(pair, self._edge_scores[edge_index],
                              self._edge_levels[edge_index])

    def similarity(self, pair: EntityPair) -> Optional[SimilarityEdge]:
        key = self._edge_key(pair)
        if key is None:
            return None
        edge_index = self._edge_index.get(key)
        if edge_index is None:
            return None
        return self.edge_at(edge_index)

    def similarity_level(self, pair: EntityPair, default: int = 0) -> int:
        key = self._edge_key(pair)
        if key is None:
            return default
        edge_index = self._edge_index.get(key)
        return self._edge_levels[edge_index] if edge_index is not None else default

    def similar_pairs(self) -> FrozenSet[EntityPair]:
        if self._similar_pairs is None:
            ids = self.interner.ids()
            self._similar_pairs = frozenset(
                EntityPair.of(ids[first], ids[second])
                for first, second in self._edge_pairs)
        return self._similar_pairs

    def similar_pairs_of(self, entity_id: str) -> FrozenSet[EntityPair]:
        if entity_id not in self.interner:
            return frozenset()
        entity_index = self.interner.index_of(entity_id)
        ids = self.interner.ids()
        return frozenset(
            EntityPair.of(ids[self._edge_pairs[edge_index][0]],
                          ids[self._edge_pairs[edge_index][1]])
            for edge_index in self.edge_indices_of(entity_index))

    def similarity_edges(self) -> List[SimilarityEdge]:
        if self._decoded_edges is None:
            self._decoded_edges = [self.edge_at(index)
                                   for index in range(len(self._edge_pairs))]
        return list(self._decoded_edges)

    def edge_indices_of(self, entity_index: int) -> Sequence[int]:
        """Indices (into the flat edge arrays) of edges touching the entity."""
        return self._edge_adj[
            self._edge_indptr[entity_index]:self._edge_indptr[entity_index + 1]]

    def edge_pair_at(self, edge_index: int) -> IndexPair:
        return self._edge_pairs[edge_index]

    # ------------------------------------------------------------ restriction
    def restrict(self, entity_ids: Iterable[str]) -> "StoreView":
        """The sub-instance induced by ``entity_ids`` as a zero-copy view."""
        return StoreView(self, frozenset(self.interner.indices_of(entity_ids)))

    def restrict_indices(self, member_indices: Iterable[int]) -> "StoreView":
        """View over pre-validated integer member indices (worker fast path)."""
        return StoreView(self, frozenset(member_indices))

    def indices_for(self, entity_ids: Iterable[str]) -> Tuple[int, ...]:
        """Sorted integer indices of ``entity_ids`` (the task-payload encoding)."""
        return tuple(sorted(self.interner.indices_of(entity_ids)))

    # ------------------------------------------------------------- pair codec
    def encode_pairs(self, pairs: Iterable[EntityPair]) -> Tuple[IndexPair, ...]:
        """Pairs as sorted canonical index pairs (compact task payloads)."""
        index_of = self.interner.index_of
        encoded = []
        for pair in pairs:
            first, second = index_of(pair.first), index_of(pair.second)
            encoded.append((first, second) if first < second else (second, first))
        return tuple(sorted(encoded))

    def decode_pairs(self, encoded: Iterable[IndexPair]) -> List[EntityPair]:
        ids = self.interner.ids()
        return [EntityPair.of(ids[first], ids[second])
                for first, second in encoded]

    # ---------------------------------------------------------------- utility
    def related_entities(self, entity_id: str,
                         relation_names: Optional[Iterable[str]] = None) -> Set[str]:
        names = list(relation_names) if relation_names is not None \
            else list(self._relations)
        related: Set[str] = set()
        for name in names:
            related.update(self.relation(name).neighbors(entity_id))
        return related

    def copy(self) -> "CompactStore":
        return CompactStore.from_store(self)

    def to_entity_store(self) -> EntityStore:
        """Materialise a mutable dict-backed :class:`EntityStore`."""
        store = EntityStore(entities=self._entities,
                            relations=(rel.copy() for rel in self.relations()))
        for edge in self.similarity_edges():
            store.add_similarity(edge.pair, edge.score, edge.level)
        return store

    def stats(self) -> Dict[str, int]:
        return {
            "entities": len(self._entities),
            "relations": len(self._relations),
            "relation_tuples": sum(len(rel) for rel in self._relations.values()),
            "similar_pairs": len(self._edge_pairs),
        }

    # --------------------------------------------------------------- mutation
    def _immutable(self, operation: str):
        raise TypeError(
            f"CompactStore is an immutable snapshot and does not support "
            f"{operation}; build a dict EntityStore and re-snapshot it via "
            f"CompactStore.from_store")

    def add_entity(self, entity: Entity) -> None:
        self._immutable("add_entity")

    def add_entities(self, entities: Iterable[Entity]) -> None:
        self._immutable("add_entities")

    def add_relation(self, relation) -> None:
        self._immutable("add_relation")

    def add_similarity(self, pair: EntityPair, score: float, level: int) -> None:
        self._immutable("add_similarity")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (f"CompactStore(entities={stats['entities']}, "
                f"relations={stats['relations']}, "
                f"similar_pairs={stats['similar_pairs']})")


class StoreView:
    """Lazy, zero-copy window over an id-subset of a :class:`CompactStore`.

    Construction is O(1) beyond holding the member set; every read resolves
    through the snapshot's shared arrays.  Induced relations are materialised
    lazily per relation (first access) from the CSR adjacency and cached, so
    a neighborhood pays only for the relations its matcher actually reads.
    Views are read-only; ``to_entity_store()`` materialises a mutable copy.
    """

    __slots__ = ("base", "_members", "_member_order", "_entity_ids",
                 "_similar_pairs", "_edge_indices", "_relation_cache",
                 "_decoded_edges")

    def __init__(self, base: CompactStore, member_indices: FrozenSet[int]):
        self.base = base
        self._members: FrozenSet[int] = member_indices
        self._member_order: Optional[List[int]] = None
        self._entity_ids: Optional[FrozenSet[str]] = None
        self._similar_pairs: Optional[FrozenSet[EntityPair]] = None
        self._edge_indices: Optional[List[int]] = None
        self._relation_cache: Dict[str, Relation] = {}
        self._decoded_edges: Optional[List[SimilarityEdge]] = None

    # --------------------------------------------------------------- members
    @property
    def member_indices(self) -> FrozenSet[int]:
        return self._members

    def _ordered_members(self) -> List[int]:
        if self._member_order is None:
            self._member_order = sorted(self._members)
        return self._member_order

    def _index_of_member(self, entity_id: str) -> int:
        index = self.base.interner.index_of(entity_id)
        if index not in self._members:
            raise UnknownEntityError(entity_id)
        return index

    # -------------------------------------------------------------- entities
    def entity(self, entity_id: str) -> Entity:
        return self.base.entity_at(self._index_of_member(entity_id))

    def has_entity(self, entity_id: str) -> bool:
        return (entity_id in self.base.interner
                and self.base.interner.index_of(entity_id) in self._members)

    def entity_ids(self) -> FrozenSet[str]:
        if self._entity_ids is None:
            self._entity_ids = frozenset(
                self.base.interner.ids_of(self._members))
        return self._entity_ids

    def entities(self) -> List[Entity]:
        return [self.base.entity_at(index) for index in self._ordered_members()]

    def entities_of_type(self, entity_type: str) -> List[Entity]:
        return [entity for entity in self.entities()
                if entity.entity_type == entity_type]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, entity_id: str) -> bool:
        return self.has_entity(entity_id)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self.entities())

    # -------------------------------------------------------------- relations
    def relation(self, name: str) -> Relation:
        cached = self._relation_cache.get(name)
        if cached is None:
            cached = self.base.relation(name).induced_relation(set(self._members))
            self._relation_cache[name] = cached
        return cached

    def has_relation(self, name: str) -> bool:
        return self.base.has_relation(name)

    def relation_names(self) -> List[str]:
        return self.base.relation_names()

    def relations(self) -> List[Relation]:
        return [self.relation(name) for name in self.relation_names()]

    # ------------------------------------------------------------- similarity
    def _member_edge_indices(self) -> List[int]:
        if self._edge_indices is None:
            members = self._members
            base = self.base
            collected: Set[int] = set()
            for entity_index in members:
                for edge_index in base.edge_indices_of(entity_index):
                    first, second = base.edge_pair_at(edge_index)
                    if first in members and second in members:
                        collected.add(edge_index)
            self._edge_indices = sorted(collected)
        return self._edge_indices

    def similarity(self, pair: EntityPair) -> Optional[SimilarityEdge]:
        key = self.base._edge_key(pair)
        if key is None or key[0] not in self._members or key[1] not in self._members:
            return None
        return self.base.similarity(pair)

    def similarity_level(self, pair: EntityPair, default: int = 0) -> int:
        edge = self.similarity(pair)
        return edge.level if edge is not None else default

    def similar_pairs(self) -> FrozenSet[EntityPair]:
        if self._similar_pairs is None:
            ids = self.base.interner.ids()
            self._similar_pairs = frozenset(
                EntityPair.of(ids[self.base.edge_pair_at(edge_index)[0]],
                              ids[self.base.edge_pair_at(edge_index)[1]])
                for edge_index in self._member_edge_indices())
        return self._similar_pairs

    def similar_pairs_of(self, entity_id: str) -> FrozenSet[EntityPair]:
        if not self.has_entity(entity_id):
            return frozenset()
        entity_index = self.base.interner.index_of(entity_id)
        members = self._members
        ids = self.base.interner.ids()
        out = []
        for edge_index in self.base.edge_indices_of(entity_index):
            first, second = self.base.edge_pair_at(edge_index)
            if first in members and second in members:
                out.append(EntityPair.of(ids[first], ids[second]))
        return frozenset(out)

    def similarity_edges(self) -> List[SimilarityEdge]:
        if self._decoded_edges is None:
            self._decoded_edges = [self.base.edge_at(edge_index)
                                   for edge_index in self._member_edge_indices()]
        return list(self._decoded_edges)

    # ------------------------------------------------------------ restriction
    def restrict(self, entity_ids: Iterable[str]) -> "StoreView":
        indices = []
        for entity_id in entity_ids:
            indices.append(self._index_of_member(entity_id))
        return StoreView(self.base, frozenset(indices))

    # ---------------------------------------------------------------- utility
    def related_entities(self, entity_id: str,
                         relation_names: Optional[Iterable[str]] = None) -> Set[str]:
        names = list(relation_names) if relation_names is not None \
            else self.relation_names()
        related: Set[str] = set()
        for name in names:
            related.update(self.relation(name).neighbors(entity_id))
        return related

    def copy(self) -> EntityStore:
        return self.to_entity_store()

    def to_entity_store(self) -> EntityStore:
        """Materialise the induced sub-instance as a dict-backed store."""
        store = EntityStore(entities=self.entities(),
                            relations=(self.relation(name).copy()
                                       for name in self.relation_names()))
        for edge in self.similarity_edges():
            store.add_similarity(edge.pair, edge.score, edge.level)
        return store

    def stats(self) -> Dict[str, int]:
        return {
            "entities": len(self._members),
            "relations": len(self.relation_names()),
            "relation_tuples": sum(len(self.relation(name))
                                   for name in self.relation_names()),
            "similar_pairs": len(self._member_edge_indices()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StoreView(entities={len(self._members)}, "
                f"base={self.base!r})")
