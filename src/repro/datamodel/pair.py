"""Canonical entity pairs.

Match decisions in the paper are over unordered pairs of entities.  To make
sets of matches well-behaved Python sets, a pair is always stored in canonical
order (smaller entity id first).  The framework, the matchers, the message
passing algorithms and the evaluation code all exchange ``EntityPair`` values,
never raw tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Set, Tuple, Union

from ..exceptions import InvalidPairError
from .entity import Entity


PairLike = Union["EntityPair", Tuple[str, str]]


@dataclass(frozen=True, order=True)
class EntityPair:
    """An unordered pair of entity ids stored in canonical (sorted) order."""

    first: str
    second: str

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise InvalidPairError(
                f"an EntityPair must reference two distinct entities, got {self.first!r} twice"
            )
        if self.first > self.second:
            # Canonicalise: the dataclass is frozen so use object.__setattr__.
            first, second = self.second, self.first
            object.__setattr__(self, "first", first)
            object.__setattr__(self, "second", second)

    @classmethod
    def of(cls, a: Union[str, Entity], b: Union[str, Entity]) -> "EntityPair":
        """Build a pair from two ids or two :class:`Entity` objects."""
        first = a.entity_id if isinstance(a, Entity) else a
        second = b.entity_id if isinstance(b, Entity) else b
        return cls(first, second)

    @classmethod
    def coerce(cls, value: PairLike) -> "EntityPair":
        """Coerce an ``EntityPair`` or ``(id, id)`` tuple into an ``EntityPair``."""
        if isinstance(value, EntityPair):
            return value
        first, second = value
        return cls.of(first, second)

    def __iter__(self) -> Iterator[str]:
        yield self.first
        yield self.second

    def other(self, entity_id: str) -> str:
        """Return the member of the pair that is not ``entity_id``."""
        if entity_id == self.first:
            return self.second
        if entity_id == self.second:
            return self.first
        raise KeyError(f"{entity_id!r} is not part of {self!r}")

    def involves(self, entity_id: str) -> bool:
        """Whether ``entity_id`` is one of the two members."""
        return entity_id == self.first or entity_id == self.second

    def as_tuple(self) -> Tuple[str, str]:
        return (self.first, self.second)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.first}~{self.second})"


def pairs_from(values: Iterable[PairLike]) -> FrozenSet[EntityPair]:
    """Coerce an iterable of pair-likes into a frozenset of canonical pairs."""
    return frozenset(EntityPair.coerce(value) for value in values)


def all_pairs(entity_ids: Iterable[str]) -> Set[EntityPair]:
    """All unordered pairs over ``entity_ids`` (quadratic; used on neighborhoods)."""
    ids = sorted(set(entity_ids))
    result: Set[EntityPair] = set()
    for i, first in enumerate(ids):
        for second in ids[i + 1:]:
            result.add(EntityPair(first, second))
    return result


def pairs_involving(pairs: Iterable[EntityPair], entity_ids: Iterable[str]) -> Set[EntityPair]:
    """Subset of ``pairs`` touching at least one id in ``entity_ids``."""
    wanted = set(entity_ids)
    return {pair for pair in pairs if pair.first in wanted or pair.second in wanted}
