"""Entity representation.

An *entity* (the paper uses the term "entity reference") is an element of the
collection ``E`` being matched.  In the running bibliography example an entity
is either a *paper* or an *author reference*; each has a type, a unique id and
a dictionary of attributes (title/journal/year for papers, fname/lname for
author references).

Entities are deliberately small immutable records: the matching framework
treats them as opaque items and only ever inspects attributes through the
similarity functions configured on a matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional


#: Conventional entity-type names used by the bibliographic data model.  The
#: framework itself accepts arbitrary type strings.
AUTHOR_TYPE = "author"
PAPER_TYPE = "paper"


@dataclass(frozen=True)
class Entity:
    """A single entity reference.

    Parameters
    ----------
    entity_id:
        Globally unique identifier.  The framework orders pairs by this id,
        so it must be hashable and totally ordered (strings are used
        throughout the library).
    entity_type:
        Free-form type tag, e.g. ``"author"`` or ``"paper"``.  Matchers only
        compare entities of the same type.
    attributes:
        Mapping of attribute name to value.  Values are compared by the
        similarity functions; strings are typical but any value is allowed.
    """

    entity_id: str
    entity_type: str = AUTHOR_TYPE
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.entity_id, str) or not self.entity_id:
            raise ValueError("entity_id must be a non-empty string")
        if not isinstance(self.entity_type, str) or not self.entity_type:
            raise ValueError("entity_type must be a non-empty string")
        # Freeze the attribute mapping so the dataclass is genuinely immutable
        # and hashing by identity-relevant fields stays safe.
        object.__setattr__(self, "attributes", dict(self.attributes))

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return an attribute value, or ``default`` when missing."""
        return self.attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        return self.attributes[attribute]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def __hash__(self) -> int:
        return hash((self.entity_id, self.entity_type))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entity):
            return NotImplemented
        return (
            self.entity_id == other.entity_id
            and self.entity_type == other.entity_type
            and dict(self.attributes) == dict(other.attributes)
        )

    def with_attributes(self, **updates: Any) -> "Entity":
        """Return a copy of this entity with ``updates`` merged into its attributes."""
        merged: Dict[str, Any] = dict(self.attributes)
        merged.update(updates)
        return Entity(self.entity_id, self.entity_type, merged)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attributes.items()))
        return f"Entity({self.entity_id!r}, {self.entity_type!r}, {{{attrs}}})"


def make_author(entity_id: str, fname: str = "", lname: str = "",
                source: Optional[str] = None, **extra: Any) -> Entity:
    """Convenience constructor for an author-reference entity.

    The bibliographic generators and examples use this helper so that the
    attribute names (``fname``/``lname``) stay consistent across the library.
    """
    attributes: Dict[str, Any] = {"fname": fname, "lname": lname}
    if source is not None:
        attributes["source"] = source
    attributes.update(extra)
    return Entity(entity_id, AUTHOR_TYPE, attributes)


def make_paper(entity_id: str, title: str = "", journal: str = "",
               year: Optional[int] = None, category: Optional[str] = None,
               **extra: Any) -> Entity:
    """Convenience constructor for a paper entity."""
    attributes: Dict[str, Any] = {"title": title, "journal": journal}
    if year is not None:
        attributes["year"] = year
    if category is not None:
        attributes["category"] = category
    attributes.update(extra)
    return Entity(entity_id, PAPER_TYPE, attributes)


def entities_by_type(entities: Iterable[Entity]) -> Dict[str, list]:
    """Group ``entities`` into a dict keyed by their ``entity_type``."""
    groups: Dict[str, list] = {}
    for entity in entities:
        groups.setdefault(entity.entity_type, []).append(entity)
    return groups
