"""Entity/relation data model shared by every component of the library."""

from .compact import CompactRelation, CompactStore, EntityInterner, StoreView
from .entity import AUTHOR_TYPE, PAPER_TYPE, Entity, entities_by_type, make_author, make_paper
from .evidence import Evidence
from .match_set import MatchSet
from .pair import EntityPair, all_pairs, pairs_from, pairs_involving
from .relation import (
    AUTHORED,
    CITES,
    COAUTHOR,
    SIMILAR,
    Relation,
    coauthor_from_authored,
)
from .serialize import store_from_dict, store_to_dict
from .store import EntityStore, SimilarityEdge

__all__ = [
    "AUTHOR_TYPE",
    "PAPER_TYPE",
    "AUTHORED",
    "CITES",
    "COAUTHOR",
    "SIMILAR",
    "CompactRelation",
    "CompactStore",
    "Entity",
    "EntityInterner",
    "EntityPair",
    "EntityStore",
    "Evidence",
    "MatchSet",
    "Relation",
    "SimilarityEdge",
    "StoreView",
    "all_pairs",
    "coauthor_from_authored",
    "entities_by_type",
    "make_author",
    "make_paper",
    "pairs_from",
    "pairs_involving",
    "store_from_dict",
    "store_to_dict",
]
