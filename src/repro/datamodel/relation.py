"""Relations over entities.

The paper's data model has, besides the entity attributes, a set of relations
``R = {Authored, Cites, Coauthor, Similar, ...}``.  A :class:`Relation` here
is a named set of tuples of entity ids (binary relations are the common case
but any arity ≥ 1 is supported).  Relations know how to compute the *induced*
sub-relation ``R(C)`` for a subset of entities ``C``, which is the operation
the total-cover definition (Definition 7) and boundary expansion are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


#: Conventional relation names used by the bibliographic data model.
AUTHORED = "authored"
CITES = "cites"
COAUTHOR = "coauthor"
SIMILAR = "similar"


RelationTuple = Tuple[str, ...]


@dataclass
class Relation:
    """A named relation: a set of tuples of entity ids.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"coauthor"``.
    arity:
        Number of entity positions in each tuple (≥ 1).
    symmetric:
        When true (e.g. ``Coauthor``), tuples are stored in canonical sorted
        order so ``(a, b)`` and ``(b, a)`` are the same tuple.  Only
        meaningful for binary relations.
    """

    name: str
    arity: int = 2
    symmetric: bool = False
    _tuples: Set[RelationTuple] = field(default_factory=set, repr=False)
    _index: Dict[str, Set[RelationTuple]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError("relation arity must be >= 1")
        if self.symmetric and self.arity != 2:
            raise ValueError("symmetric relations must be binary")

    # ------------------------------------------------------------------ basic
    def _canonical(self, tup: Sequence[str]) -> RelationTuple:
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name!r} has arity {self.arity}, got tuple of length {len(tup)}"
            )
        canonical = tuple(tup)
        if self.symmetric and canonical[0] > canonical[1]:
            canonical = (canonical[1], canonical[0])
        return canonical

    def add(self, *entity_ids: str) -> None:
        """Add a tuple to the relation (idempotent)."""
        tup = self._canonical(entity_ids)
        if tup in self._tuples:
            return
        self._tuples.add(tup)
        for entity_id in set(tup):
            self._index.setdefault(entity_id, set()).add(tup)

    def discard(self, *entity_ids: str) -> None:
        """Remove a tuple if present."""
        tup = self._canonical(entity_ids)
        if tup not in self._tuples:
            return
        self._tuples.discard(tup)
        for entity_id in set(tup):
            bucket = self._index.get(entity_id)
            if bucket is not None:
                bucket.discard(tup)
                if not bucket:
                    del self._index[entity_id]

    def __contains__(self, tup: Sequence[str]) -> bool:
        return self._canonical(tup) in self._tuples

    def contains(self, *entity_ids: str) -> bool:
        """Membership test with ids as positional arguments."""
        return self._canonical(entity_ids) in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[RelationTuple]:
        return iter(self._tuples)

    def tuples(self) -> FrozenSet[RelationTuple]:
        """All tuples as a frozenset."""
        return frozenset(self._tuples)

    # -------------------------------------------------------------- traversal
    def tuples_of(self, entity_id: str) -> FrozenSet[RelationTuple]:
        """Tuples in which ``entity_id`` participates."""
        return frozenset(self._index.get(entity_id, frozenset()))

    def neighbors(self, entity_id: str) -> Set[str]:
        """Entity ids co-occurring with ``entity_id`` in some tuple."""
        out: Set[str] = set()
        for tup in self._index.get(entity_id, ()):  # type: ignore[arg-type]
            out.update(tup)
        out.discard(entity_id)
        return out

    def participants(self) -> Set[str]:
        """All entity ids occurring in the relation."""
        return set(self._index)

    def tuples_touching(self, entity_ids: Iterable[str]) -> Iterator[RelationTuple]:
        """Tuples with at least one member in ``entity_ids``.

        Walks whichever side is smaller: the members' per-entity tuple index
        when the set is small, or the relation's tuples in one pass when the
        set is larger than the relation.  Tuples shared by several members
        may be yielded more than once on the index path — callers
        accumulating into a set are unaffected.
        """
        members = entity_ids if isinstance(entity_ids, (set, frozenset)) \
            else set(entity_ids)
        if len(members) <= len(self._tuples):
            for entity_id in members:
                yield from self._index.get(entity_id, ())
        else:
            for tup in self._tuples:
                if not members.isdisjoint(tup):
                    yield tup

    # --------------------------------------------------------------- algebra
    def induced(self, entity_ids: Iterable[str]) -> "Relation":
        """``R(C)``: the sub-relation whose tuples lie entirely inside ``entity_ids``."""
        allowed = set(entity_ids)
        induced = Relation(self.name, self.arity, self.symmetric)
        # Iterate over tuples touching the allowed set rather than the whole
        # relation: neighborhoods are small, relations can be large.
        candidate_tuples: Set[RelationTuple] = set()
        for entity_id in allowed:
            candidate_tuples.update(self._index.get(entity_id, ()))  # type: ignore[arg-type]
        for tup in candidate_tuples:
            if all(entity_id in allowed for entity_id in tup):
                induced.add(*tup)
        return induced

    def union(self, other: "Relation") -> "Relation":
        """Union of two relations with the same signature."""
        self._check_signature(other)
        merged = Relation(self.name, self.arity, self.symmetric)
        for tup in self._tuples:
            merged.add(*tup)
        for tup in other._tuples:
            merged.add(*tup)
        return merged

    def copy(self) -> "Relation":
        clone = Relation(self.name, self.arity, self.symmetric)
        for tup in self._tuples:
            clone.add(*tup)
        return clone

    def _check_signature(self, other: "Relation") -> None:
        if (self.name, self.arity, self.symmetric) != (other.name, other.arity, other.symmetric):
            raise ValueError(
                f"relation signature mismatch: {self.name}/{self.arity} vs {other.name}/{other.arity}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self.symmetric == other.symmetric
            and self._tuples == other._tuples
        )


def coauthor_from_authored(authored: Relation, name: str = COAUTHOR) -> Relation:
    """Derive the symmetric ``Coauthor`` relation by self-joining ``Authored``.

    ``Authored(a, p)`` tuples are joined on the paper id ``p``; every pair of
    distinct authors of the same paper becomes a ``Coauthor`` tuple.  This
    mirrors the paper's remark that Coauthor "can easily be derived through a
    self-join on Authored".
    """
    if authored.arity != 2:
        raise ValueError("authored relation must be binary (author, paper)")
    papers_to_authors: Dict[str, List[str]] = {}
    for author_id, paper_id in authored:
        papers_to_authors.setdefault(paper_id, []).append(author_id)
    coauthor = Relation(name, arity=2, symmetric=True)
    for authors in papers_to_authors.values():
        unique_authors = sorted(set(authors))
        for i, a1 in enumerate(unique_authors):
            for a2 in unique_authors[i + 1:]:
                coauthor.add(a1, a2)
    return coauthor
