"""JSON serialisation of an :class:`EntityStore` instance.

One canonical layout (entities / relations / similarity edges, all sorted)
shared by the dataset loader and the durability layer's checkpoints, so a
store always round-trips bit-for-bit regardless of which component wrote it.
"""

from __future__ import annotations

from typing import Dict

from .entity import Entity
from .pair import EntityPair
from .relation import Relation
from .store import EntityStore


def store_to_dict(store) -> Dict:
    """Serialise the full instance (any store exposing the read interface)."""
    return {
        "entities": [
            {
                "id": entity.entity_id,
                "type": entity.entity_type,
                "attributes": dict(entity.attributes),
            }
            for entity in sorted(store, key=lambda e: e.entity_id)
        ],
        "relations": [
            {
                "name": relation.name,
                "arity": relation.arity,
                "symmetric": relation.symmetric,
                "tuples": sorted(list(tup) for tup in relation),
            }
            for relation in store.relations()
        ],
        "similar": [
            {
                "first": edge.pair.first,
                "second": edge.pair.second,
                "score": edge.score,
                "level": edge.level,
            }
            for edge in sorted(store.similarity_edges(), key=lambda e: e.pair)
        ],
    }


def store_from_dict(payload: Dict) -> EntityStore:
    """Rebuild a dict store from the layout of :func:`store_to_dict`."""
    store = EntityStore()
    for record in payload["entities"]:
        store.add_entity(Entity(record["id"], record["type"], record["attributes"]))
    for record in payload["relations"]:
        relation = Relation(record["name"], record["arity"], record["symmetric"])
        for tup in record["tuples"]:
            relation.add(*tup)
        store.add_relation(relation)
    for record in payload["similar"]:
        store.add_similarity(EntityPair.of(record["first"], record["second"]),
                             record["score"], record["level"])
    return store
