"""Entity store: the full EM problem instance.

An :class:`EntityStore` bundles the entity collection ``E`` with the relation
set ``R`` and a similarity index (the ``Similar`` relation of the paper,
stored with its discretised score levels).  It is the single object handed to
matchers, cover builders and the message-passing framework.

The store supports cheap *restriction* to a subset of entities
(:meth:`EntityStore.restrict`), which is how a neighborhood is materialised
before being handed to the black-box matcher: the restricted store exposes the
induced relations ``R(C)`` and the induced similarity edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..exceptions import UnknownEntityError, UnknownRelationError
from .entity import Entity
from .pair import EntityPair
from .relation import COAUTHOR, Relation, coauthor_from_authored


@dataclass
class SimilarityEdge:
    """A scored similarity edge between two entities.

    ``score`` is the raw similarity in [0, 1]; ``level`` is the discretised
    level in {1, 2, 3} used by the paper's MLN and RULES programs (3 = most
    similar).
    """

    pair: EntityPair
    score: float
    level: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"similarity score must be in [0, 1], got {self.score}")
        if self.level not in (1, 2, 3):
            raise ValueError(f"similarity level must be 1, 2 or 3, got {self.level}")


class EntityStore:
    """Container for entities, relations and similarity evidence."""

    def __init__(self, entities: Iterable[Entity] = (),
                 relations: Iterable[Relation] = ()):
        self._entities: Dict[str, Entity] = {}
        self._relations: Dict[str, Relation] = {}
        self._similar: Dict[EntityPair, SimilarityEdge] = {}
        self._similar_index: Dict[str, Set[EntityPair]] = {}
        # (authored_name, coauthor_name) -> (authored tuples snapshot,
        # derived relation); invalidated on add_relation, and guarded by the
        # snapshot against in-place mutation of the source relation.
        self._derived_coauthor: Dict[Tuple[str, str],
                                     Tuple[FrozenSet, Relation]] = {}
        for entity in entities:
            self.add_entity(entity)
        for relation in relations:
            self.add_relation(relation)

    # --------------------------------------------------------------- entities
    def add_entity(self, entity: Entity) -> None:
        """Register an entity (idempotent for identical entities)."""
        existing = self._entities.get(entity.entity_id)
        if existing is not None and existing != entity:
            raise ValueError(f"conflicting entity registered twice: {entity.entity_id!r}")
        self._entities[entity.entity_id] = entity

    def add_entities(self, entities: Iterable[Entity]) -> None:
        for entity in entities:
            self.add_entity(entity)

    def replace_entity(self, entity: Entity) -> Entity:
        """Replace a registered entity's record (attribute updates).

        Relations and similarity edges referencing the id are left in place —
        an attribute update does not change the graph structure.  Returns the
        previous :class:`Entity`.
        """
        try:
            previous = self._entities[entity.entity_id]
        except KeyError:
            raise UnknownEntityError(entity.entity_id) from None
        self._entities[entity.entity_id] = entity
        return previous

    def remove_entity(self, entity_id: str) -> Entity:
        """Remove an entity along with everything referencing it.

        Cascades: every relation tuple touching the entity is discarded and
        every similarity edge incident to it is removed, so the store stays
        internally consistent (no dangling references).  The derived-coauthor
        cache is invalidated because the cascade may mutate the source
        relation.  Returns the removed :class:`Entity`.
        """
        try:
            entity = self._entities.pop(entity_id)
        except KeyError:
            raise UnknownEntityError(entity_id) from None
        for relation in self._relations.values():
            for tup in list(relation.tuples_of(entity_id)):
                relation.discard(*tup)
        for pair in list(self._similar_index.get(entity_id, ())):
            self.remove_similarity(pair)
        self._derived_coauthor.clear()
        return entity

    def entity(self, entity_id: str) -> Entity:
        try:
            return self._entities[entity_id]
        except KeyError:
            raise UnknownEntityError(entity_id) from None

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def entity_ids(self) -> FrozenSet[str]:
        return frozenset(self._entities)

    def entities(self) -> List[Entity]:
        return list(self._entities.values())

    def entities_of_type(self, entity_type: str) -> List[Entity]:
        return [e for e in self._entities.values() if e.entity_type == entity_type]

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    # -------------------------------------------------------------- relations
    def add_relation(self, relation: Relation) -> None:
        """Register (or replace) a relation by name."""
        self._relations[relation.name] = relation
        # Any relation change may invalidate cached derivations (the source
        # Authored relation could have been replaced or extended in place).
        self._derived_coauthor.clear()

    def remove_tuple(self, relation_name: str, *entity_ids: str) -> None:
        """Discard one tuple of a registered relation (no-op when absent).

        Goes through the store so the derived-coauthor cache is invalidated:
        the removed tuple may belong to the source ``authored`` relation (the
        snapshot guard in :meth:`derive_coauthor` would also catch the drift,
        but eager invalidation keeps the cache from pinning stale relations).
        """
        self.relation(relation_name).discard(*entity_ids)
        self._derived_coauthor.clear()

    def remove_relation(self, name: str) -> Relation:
        """Unregister and return a whole relation."""
        try:
            removed = self._relations.pop(name)
        except KeyError:
            raise UnknownRelationError(name) from None
        self._derived_coauthor.clear()
        return removed

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def relations(self) -> List[Relation]:
        return [self._relations[name] for name in sorted(self._relations)]

    def derive_coauthor(self, authored_name: str = "authored",
                        coauthor_name: str = COAUTHOR) -> Relation:
        """Derive and register the Coauthor relation from Authored.

        The derivation (a self-join on Authored) is cached on the store, so
        repeated neighborhood builds do not re-derive the same COAUTHOR
        tuples.  The cache is invalidated whenever :meth:`add_relation` runs
        and additionally guarded by a snapshot of the source tuples, so
        in-place mutation of the Authored relation also triggers a fresh
        derivation.
        """
        cache_key = (authored_name, coauthor_name)
        source_tuples = self.relation(authored_name).tuples()
        cached = self._derived_coauthor.get(cache_key)
        if cached is not None and cached[0] == source_tuples:
            coauthor = cached[1]
        else:
            coauthor = coauthor_from_authored(self.relation(authored_name),
                                              coauthor_name)
        self.add_relation(coauthor)
        # Cache after add_relation: registering the derived relation clears
        # the cache, so re-insert the fresh entry.
        self._derived_coauthor[cache_key] = (source_tuples, coauthor)
        return coauthor

    # ------------------------------------------------------------- similarity
    def add_similarity(self, pair: EntityPair, score: float, level: int) -> None:
        """Record a (discretised) similarity edge between two known entities."""
        for entity_id in pair:
            if entity_id not in self._entities:
                raise UnknownEntityError(entity_id)
        edge = SimilarityEdge(pair, score, level)
        self._similar[pair] = edge
        for entity_id in pair:
            self._similar_index.setdefault(entity_id, set()).add(pair)

    def remove_similarity(self, pair: EntityPair) -> Optional[SimilarityEdge]:
        """Remove the similarity edge for ``pair`` (returns it, or ``None``).

        The per-entity similarity postings are updated in place; empty
        posting buckets are dropped so the index never accumulates dead
        entries over a long mutation stream.
        """
        edge = self._similar.pop(pair, None)
        if edge is None:
            return None
        for entity_id in pair:
            bucket = self._similar_index.get(entity_id)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self._similar_index[entity_id]
        return edge

    def similarity(self, pair: EntityPair) -> Optional[SimilarityEdge]:
        """The similarity edge for ``pair``, or ``None`` when the pair was never scored."""
        return self._similar.get(pair)

    def similarity_level(self, pair: EntityPair, default: int = 0) -> int:
        edge = self._similar.get(pair)
        return edge.level if edge is not None else default

    def similar_pairs(self) -> FrozenSet[EntityPair]:
        """All pairs with a recorded similarity edge (the candidate match pairs)."""
        return frozenset(self._similar)

    def similar_pairs_of(self, entity_id: str) -> FrozenSet[EntityPair]:
        return frozenset(self._similar_index.get(entity_id, frozenset()))

    def similarity_edges(self) -> List[SimilarityEdge]:
        return list(self._similar.values())

    # ------------------------------------------------------------ restriction
    def restrict(self, entity_ids: Iterable[str]) -> "EntityStore":
        """Materialise the sub-instance induced by ``entity_ids``.

        The restricted store contains the selected entities, the induced
        relations ``R(C)`` and the similarity edges with both endpoints in
        ``C``.  This is the object handed to the black-box matcher when it is
        run on a neighborhood.
        """
        selected = set(entity_ids)
        unknown = selected - set(self._entities)
        if unknown:
            raise UnknownEntityError(sorted(unknown)[0])
        restricted = EntityStore(
            entities=(self._entities[eid] for eid in selected),
            relations=(rel.induced(selected) for rel in self._relations.values()),
        )
        # Walk whichever side is smaller.  Small subsets go through the
        # per-entity ``_similar_index`` postings; subsets covering most of
        # the store scan the edge list once instead of re-deriving it from
        # the postings (which visits every inner edge twice, once per
        # endpoint).  Either way each surviving edge is added exactly once.
        if len(selected) < len(self._similar):
            seen: Set[EntityPair] = set()
            for entity_id in selected:
                for pair in self._similar_index.get(entity_id, ()):  # type: ignore[arg-type]
                    if pair in seen:
                        continue
                    if pair.first in selected and pair.second in selected:
                        seen.add(pair)
                        edge = self._similar[pair]
                        restricted.add_similarity(pair, edge.score, edge.level)
        else:
            for pair, edge in self._similar.items():
                if pair.first in selected and pair.second in selected:
                    restricted.add_similarity(pair, edge.score, edge.level)
        return restricted

    # ---------------------------------------------------------------- utility
    def related_entities(self, entity_id: str,
                         relation_names: Optional[Iterable[str]] = None) -> Set[str]:
        """Entities sharing a relation tuple with ``entity_id``.

        Used to compute the *boundary* of a neighborhood (Section 4): the
        entities that co-occur with a member of the neighborhood in some
        relation tuple.
        """
        names = list(relation_names) if relation_names is not None else list(self._relations)
        related: Set[str] = set()
        for name in names:
            relation = self.relation(name)
            related.update(relation.neighbors(entity_id))
        return related

    def copy(self) -> "EntityStore":
        clone = EntityStore(entities=self._entities.values(),
                            relations=(rel.copy() for rel in self._relations.values()))
        for edge in self._similar.values():
            clone.add_similarity(edge.pair, edge.score, edge.level)
        return clone

    def stats(self) -> Dict[str, int]:
        """Summary statistics used by reports and the experiment harness."""
        return {
            "entities": len(self._entities),
            "relations": len(self._relations),
            "relation_tuples": sum(len(rel) for rel in self._relations.values()),
            "similar_pairs": len(self._similar),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (f"EntityStore(entities={stats['entities']}, relations={stats['relations']}, "
                f"similar_pairs={stats['similar_pairs']})")
