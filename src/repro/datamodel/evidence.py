"""Evidence sets (V+, V−) handed to a matcher.

Definition 1 of the paper gives a Type-I matcher the signature
``E(E, V+, V−)`` where ``V+`` is a set of pairs known to be matches and
``V−`` a set of pairs known to be non-matches.  :class:`Evidence` is the value
object carrying those two sets through the framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from ..exceptions import MatcherError
from .pair import EntityPair, pairs_from


@dataclass(frozen=True)
class Evidence:
    """Positive (known matches) and negative (known non-matches) evidence."""

    positive: FrozenSet[EntityPair] = field(default_factory=frozenset)
    negative: FrozenSet[EntityPair] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "positive", pairs_from(self.positive))
        object.__setattr__(self, "negative", pairs_from(self.negative))
        overlap = self.positive & self.negative
        if overlap:
            raise MatcherError(
                f"evidence is contradictory: {sorted(overlap)!r} marked both match and non-match"
            )

    @classmethod
    def empty(cls) -> "Evidence":
        return cls()

    @classmethod
    def of(cls, positive: Iterable[EntityPair] = (), negative: Iterable[EntityPair] = ()) -> "Evidence":
        return cls(pairs_from(positive), pairs_from(negative))

    def with_positive(self, pairs: Iterable[EntityPair]) -> "Evidence":
        """A copy with extra positive evidence added."""
        return Evidence(self.positive | pairs_from(pairs), self.negative)

    def with_negative(self, pairs: Iterable[EntityPair]) -> "Evidence":
        """A copy with extra negative evidence added."""
        return Evidence(self.positive, self.negative | pairs_from(pairs))

    def restricted_to(self, entity_ids: Iterable[str]) -> "Evidence":
        """Evidence restricted to pairs fully inside ``entity_ids``.

        Used when handing global evidence to a neighborhood run: pairs outside
        the neighborhood carry no information for the local matcher.
        """
        allowed = set(entity_ids)
        keep_pos = frozenset(p for p in self.positive
                             if p.first in allowed and p.second in allowed)
        keep_neg = frozenset(p for p in self.negative
                             if p.first in allowed and p.second in allowed)
        return Evidence(keep_pos, keep_neg)

    def is_empty(self) -> bool:
        return not self.positive and not self.negative

    def __len__(self) -> int:
        return len(self.positive) + len(self.negative)
